//! Property test for the session-reuse contract the experiment
//! orchestrator relies on: a long-lived [`AttackSession`] that is
//! toggled arbitrarily and then re-pointed at a new target set via
//! [`AttackSession::retarget`] must be indistinguishable from a session
//! freshly constructed on the same substrate — same incremental egonet
//! features, same forward/backward pass.

use ba_core::AttackSession;
use ba_graph::{generators, CsrGraph, GraphView};
use proptest::prelude::*;

const N: u32 = 60;

fn planted(seed: u64) -> ba_graph::Graph {
    let mut g = generators::erdos_renyi(N as usize, 0.08, seed);
    generators::attach_isolated(&mut g, seed + 1);
    generators::plant_near_clique(&mut g, &(0..7).collect::<Vec<_>>(), 1.0, seed + 2);
    g
}

proptest! {
    /// Random interleavings of edit bursts and retargets: after every
    /// retarget the reused session matches a fresh one bit-for-bit.
    #[test]
    fn retarget_and_reset_equal_fresh_session(
        seed in 0u64..20,
        script in proptest::collection::vec(
            (
                proptest::collection::vec((0u32..N, 0u32..N), 0..12),
                proptest::collection::vec(0u32..N, 1..5),
            ),
            1..5,
        ),
    ) {
        let g = planted(seed);
        let csr = CsrGraph::from(&g);
        let mut reused = AttackSession::new(&csr, &[0]).unwrap();

        for (toggles, targets) in script {
            // Dirty the working graph under the old target set.
            for (u, v) in toggles {
                if u != v {
                    reused.toggle(u, v);
                }
            }
            reused.retarget(&targets).unwrap();
            let mut fresh = AttackSession::new(&csr, &targets).unwrap();

            prop_assert_eq!(reused.targets(), fresh.targets());
            prop_assert_eq!(reused.graph().dirty_rows(), 0);
            prop_assert_eq!(reused.features(), fresh.features());

            let ng_r = reused.node_grads();
            let ng_f = fresh.node_grads();
            prop_assert_eq!(ng_r.is_err(), ng_f.is_err());
            if let (Ok(r), Ok(f)) = (ng_r, ng_f) {
                prop_assert_eq!(r.loss, f.loss);
                prop_assert_eq!(r.beta0, f.beta0);
                prop_assert_eq!(r.beta1, f.beta1);
                prop_assert_eq!(r.g_n, f.g_n);
                prop_assert_eq!(r.g_e, f.g_e);
                prop_assert_eq!(r.h, f.h);
            }
        }
    }

    /// `retarget` rejects the same bad target sets `new` rejects, and a
    /// failed retarget leaves the session usable.
    #[test]
    fn retarget_validates_targets(t in 0u32..(2 * N)) {
        let g = planted(3);
        let csr = CsrGraph::from(&g);
        let mut s = AttackSession::new(&csr, &[0, 1]).unwrap();
        s.toggle(2, 3);
        let r = s.retarget(&[t]);
        prop_assert_eq!(r.is_ok(), (t as usize) < csr.num_nodes());
        if r.is_err() {
            // The session still answers queries on its old target set.
            prop_assert_eq!(s.targets(), &[0, 1][..]);
            prop_assert!(s.loss().unwrap().is_finite());
        }
    }
}
