//! Memoization correctness suite.
//!
//! Two properties guard the transposition-table/PV optimisation:
//!
//! 1. **Hash contract** — the session's incremental Zobrist state hash
//!    must equal the from-scratch hash of the materialised edge set
//!    XORed with the target-set hash after *every* toggle, reset, and
//!    retarget. Every memo key derives from this hash, so a single
//!    divergence would silently alias cache entries across states.
//! 2. **Golden cached ≡ uncached** — for all five attacks, a memoized
//!    session reused across target sets and repeated runs (the
//!    orchestrator's shape, which exercises the run-outcome replay
//!    tier, the assembly LRU, and the transposition table) must return
//!    outcomes bit-identical to fresh unmemoized runs. Memoization
//!    trades memory for wall-clock, never results.

use ba_core::{
    target_set_hash, AttackConfig, AttackOutcome, AttackSession, BinarizedAttack, CliqueBreaker,
    ContinuousA, GradMaxSearch, RandomAttack, StructuralAttack,
};
use ba_graph::{generators, zobrist, CsrGraph, Graph, NodeId};
use ba_oddball::OddBall;
use proptest::prelude::*;

const N: u32 = 24;

fn base_graph(er: u8, seed: u64) -> Graph {
    if er == 1 {
        generators::erdos_renyi(N as usize, 0.12, seed)
    } else {
        generators::barabasi_albert(N as usize, 2, seed)
    }
}

proptest! {
    /// Session-level hash contract under toggle/reset/retarget scripts
    /// (script interpretation: `act` picks the operation, `u`/`v` its
    /// operands; retargets use `u` as a single in-range target).
    #[test]
    fn session_hash_matches_from_scratch(
        er in 0u8..2,
        seed in 0u64..20,
        script in proptest::collection::vec((0u32..N, 0u32..N, 0u8..10), 1..50),
    ) {
        let g = base_graph(er, seed);
        let csr = CsrGraph::from(&g);
        let mut targets: Vec<NodeId> = vec![0, 1];
        let mut session = AttackSession::new(&csr, &targets).unwrap();
        for (u, v, act) in script {
            match act {
                0 => session.reset(),
                1 => {
                    targets = vec![u, (u + 1) % N];
                    session.retarget(&targets).unwrap();
                }
                _ => {
                    session.toggle(u, v);
                }
            }
            prop_assert_eq!(
                session.state_hash(),
                zobrist::edge_set_hash(session.graph()) ^ target_set_hash(&targets)
            );
        }
        // Reset restores the clean state's hash exactly.
        session.reset();
        prop_assert_eq!(
            session.state_hash(),
            csr.edge_hash() ^ target_set_hash(&targets)
        );
    }
}

/// An anomalous instance with two disjoint OddBall-ranked target sets.
fn anomalous_instance(seed: u64) -> (Graph, Vec<Vec<NodeId>>) {
    let mut g = generators::erdos_renyi(80, 0.06, seed);
    generators::attach_isolated(&mut g, seed + 1);
    let members: Vec<NodeId> = (0..8).collect();
    generators::plant_near_clique(&mut g, &members, 1.0, seed + 2);
    let model = OddBall::default().fit(&g).unwrap();
    let ranked: Vec<NodeId> = model.top_k(4).into_iter().map(|(i, _)| i).collect();
    (g, vec![ranked[..2].to_vec(), ranked[2..].to_vec()])
}

fn assert_outcomes_bit_identical(fresh: &AttackOutcome, memo: &AttackOutcome) {
    assert_eq!(fresh.name, memo.name);
    assert_eq!(
        fresh.ops_per_budget, memo.ops_per_budget,
        "{}: ops diverged",
        fresh.name
    );
    assert_eq!(
        fresh.surrogate_loss_per_budget, memo.surrogate_loss_per_budget,
        "{}: losses diverged",
        fresh.name
    );
    assert_eq!(
        fresh.loss_trajectory, memo.loss_trajectory,
        "{}: trajectories diverged",
        fresh.name
    );
}

/// Runs every attack twice per target set on the shared memoized
/// session (run 2 hits the outcome-replay tier for the search attacks)
/// and pins each outcome against a fresh unmemoized run.
fn golden_cached_equals_uncached(seed: u64, budget: usize) {
    let (g, target_sets) = anomalous_instance(seed);
    let csr = CsrGraph::from(&g);
    let cfg = AttackConfig {
        seed,
        ..AttackConfig::default()
    };
    let attacks: Vec<Box<dyn StructuralAttack>> = vec![
        Box::new(
            BinarizedAttack::new(cfg)
                .with_iterations(40)
                .with_lambdas(vec![0.01, 0.05]),
        ),
        Box::new(GradMaxSearch::new(cfg)),
        Box::new(ContinuousA::new(cfg).with_iterations(40)),
        Box::new(RandomAttack::new(cfg)),
        Box::new(CliqueBreaker::new(cfg)),
    ];

    let mut memo_session = AttackSession::new(&csr, &target_sets[0])
        .unwrap()
        .with_memo();
    for targets in &target_sets {
        for attack in &attacks {
            memo_session.retarget(targets).unwrap();
            let first = attack
                .attack_with_session(&mut memo_session, budget)
                .unwrap();
            memo_session.retarget(targets).unwrap();
            let replay = attack
                .attack_with_session(&mut memo_session, budget)
                .unwrap();

            let mut fresh_session = AttackSession::new(&csr, targets).unwrap();
            assert!(!fresh_session.memo_enabled());
            let fresh = attack
                .attack_with_session(&mut fresh_session, budget)
                .unwrap();
            assert_outcomes_bit_identical(&fresh, &first);
            assert_outcomes_bit_identical(&fresh, &replay);
        }
    }
    // The search attacks replayed run 2 from the outcome tier.
    let stats = memo_session.memo_stats().unwrap();
    assert!(
        stats.outcome_hits >= 2 * target_sets.len() as u64,
        "outcome tier never replayed: {stats:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    /// Golden suite: cached ≡ uncached, bit for bit, for all five
    /// attacks across instances and budgets.
    #[test]
    fn all_attacks_cached_equals_uncached(seed in 0u64..40, budget in 3usize..7) {
        golden_cached_equals_uncached(seed, budget);
    }
}
