//! Cross-method integration tests: the paper's headline qualitative
//! claims, asserted on seeded synthetic graphs at test scale.

use ba_core::{
    AttackOutcome, BinarizedAttack, ContinuousA, GradMaxSearch, RandomAttack, StructuralAttack,
};
use ba_graph::{generators, Graph, NodeId};
use ba_oddball::OddBall;

fn anomalous_graph(seed: u64, n: usize) -> (Graph, Vec<NodeId>) {
    let mut g = generators::erdos_renyi(n, 8.0 / n as f64, seed);
    generators::attach_isolated(&mut g, seed + 1);
    let members: Vec<NodeId> = (0..10).collect();
    generators::plant_near_clique(&mut g, &members, 1.0, seed + 2);
    generators::plant_near_star(&mut g, 15, n / 6, seed + 3);
    let model = OddBall::default().fit(&g).unwrap();
    let targets: Vec<NodeId> = model.top_k(3).into_iter().map(|(i, _)| i).collect();
    (g, targets)
}

fn tau_for(attack: &dyn StructuralAttack, g: &Graph, targets: &[NodeId], b: usize) -> f64 {
    let outcome = attack.attack(g, targets, b).unwrap();
    let curve = outcome
        .ascore_curve(g, targets, &OddBall::default())
        .unwrap();
    AttackOutcome::tau_as(&curve, outcome.max_budget().min(b))
}

#[test]
fn gradient_methods_beat_random() {
    let (g, targets) = anomalous_graph(101, 150);
    let budget = 12;
    let tau_bin = tau_for(
        &BinarizedAttack::default()
            .with_iterations(60)
            .with_lambdas(vec![0.01, 0.05]),
        &g,
        &targets,
        budget,
    );
    let tau_gms = tau_for(&GradMaxSearch::default(), &g, &targets, budget);
    let tau_rand = tau_for(&RandomAttack::default(), &g, &targets, budget);
    assert!(
        tau_bin > tau_rand + 0.1,
        "binarized ({tau_bin}) not clearly above random ({tau_rand})"
    );
    assert!(
        tau_gms > tau_rand + 0.1,
        "gradmax ({tau_gms}) not clearly above random ({tau_rand})"
    );
}

#[test]
fn binarized_is_competitive_with_gradmax() {
    // The paper's headline: GradMaxSearch (greedy) is strong at small
    // budgets but myopic at large ones, where BinarizedAttack pulls ahead
    // (Sec. VIII-B1). At test scale with budget ≈ 20% of the edges this
    // shows as: binarized within 85% of greedy everywhere, and winning
    // (or tying within 0.005) on most seeds.
    let budget = 30;
    let mut wins = 0;
    for seed in [201, 203, 205] {
        let (g, targets) = anomalous_graph(seed, 150);
        let tau_bin = tau_for(
            &BinarizedAttack::default()
                .with_iterations(150)
                .with_lambdas(vec![0.002, 0.01, 0.05]),
            &g,
            &targets,
            budget,
        );
        let tau_gms = tau_for(&GradMaxSearch::default(), &g, &targets, budget);
        assert!(
            tau_bin > 0.85 * tau_gms - 0.02,
            "seed {seed}: binarized {tau_bin} far below gradmax {tau_gms}"
        );
        if tau_bin >= tau_gms - 0.005 {
            wins += 1;
        }
    }
    assert!(
        wins >= 2,
        "binarized only matched gradmax on {wins}/3 seeds at large budget"
    );
}

#[test]
fn strong_attack_with_small_fraction_of_edges() {
    // Paper: up to ~90% AScore decrease while modifying ≤ a few % of
    // edges. At our test scale, assert ≥ 50% decrease with ≤ 10% edges.
    let (g, targets) = anomalous_graph(301, 200);
    let budget = (g.num_edges() / 10).min(25);
    let attack = BinarizedAttack::default()
        .with_iterations(80)
        .with_lambdas(vec![0.01, 0.05]);
    let tau = tau_for(&attack, &g, &targets, budget);
    assert!(
        tau > 0.5,
        "τ_as = {tau} with budget {budget} of {} edges",
        g.num_edges()
    );
}

#[test]
fn continuous_a_is_erratic_but_runs_end_to_end() {
    // Fig. 4 shows ContinuousA is sometimes ineffective — we only require
    // that it runs, respects the interface, and does not crash; and that
    // at least it moves the relaxed objective (asserted in unit tests).
    let (g, targets) = anomalous_graph(401, 120);
    let attack = ContinuousA::default().with_iterations(25).with_threads(2);
    let outcome = attack.attack(&g, &targets, 10).unwrap();
    assert_eq!(outcome.max_budget(), 10);
    let curve = outcome
        .ascore_curve(&g, &targets, &OddBall::default())
        .unwrap();
    assert_eq!(curve.len(), 11);
    for s in curve {
        assert!(s.is_finite());
    }
}

#[test]
fn tau_increases_with_budget_for_binarized() {
    let (g, targets) = anomalous_graph(501, 150);
    let attack = BinarizedAttack::default()
        .with_iterations(60)
        .with_lambdas(vec![0.01, 0.05]);
    let outcome = attack.attack(&g, &targets, 16).unwrap();
    let curve = outcome
        .ascore_curve(&g, &targets, &OddBall::default())
        .unwrap();
    let tau4 = AttackOutcome::tau_as(&curve, 4);
    let tau16 = AttackOutcome::tau_as(&curve, 16);
    assert!(
        tau16 >= tau4 - 0.02,
        "more budget made the attack notably worse: τ(4)={tau4}, τ(16)={tau16}"
    );
    assert!(
        tau16 > tau4 * 1.05 || tau16 > 0.8,
        "budget had no effect: {tau4} -> {tau16}"
    );
}

#[test]
fn attacks_preserve_untargeted_global_structure() {
    // Side-effect check (Sec. VIII-B3): the attack should not blow up the
    // global feature distribution. Mean degree must move by < 5%.
    let (g, targets) = anomalous_graph(601, 200);
    let attack = BinarizedAttack::default()
        .with_iterations(60)
        .with_lambdas(vec![0.02]);
    let outcome = attack.attack(&g, &targets, 20).unwrap();
    let poisoned = outcome.poisoned_graph(&g, 20);
    let before = ba_graph::metrics::average_degree(&g);
    let after = ba_graph::metrics::average_degree(&poisoned);
    assert!(
        (after - before).abs() / before < 0.05,
        "average degree shifted too much: {before} -> {after}"
    );
}
