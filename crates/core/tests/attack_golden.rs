//! Fixed-seed golden equivalence tests.
//!
//! The op sequences and surrogate losses below were captured from the
//! pre-CSR (BTreeSet-adjacency, correction-map gradient) implementation.
//! The CSR substrate + sparse parallel gradient assembly must reproduce
//! them *byte-identically*: every arithmetic kernel (common-neighbour
//! sums, incremental feature patches, gradient accumulation) was
//! rewritten to accumulate in the same order precisely so that the
//! refactor is observationally invisible. If one of these asserts fires,
//! the engine's numerics changed — not just its performance.

// The golden losses are written with every digit the capture printed;
// f64 round-trips at 17 significant digits, so keep them verbatim.
#![allow(clippy::excessive_precision)]

use ba_core::{AttackConfig, BinarizedAttack, GradMaxSearch, StructuralAttack};
use ba_graph::{generators, EdgeOp, Graph, NodeId};
use ba_oddball::OddBall;

fn anomalous_graph(seed: u64) -> (Graph, Vec<NodeId>) {
    let mut g = generators::erdos_renyi(150, 0.04, seed);
    generators::attach_isolated(&mut g, seed + 1);
    let members: Vec<NodeId> = (0..10).collect();
    generators::plant_near_clique(&mut g, &members, 1.0, seed + 2);
    let model = OddBall::default().fit(&g).unwrap();
    let targets: Vec<NodeId> = model.top_k(3).into_iter().map(|(i, _)| i).collect();
    (g, targets)
}

fn ops(spec: &[(NodeId, NodeId)]) -> Vec<EdgeOp> {
    // All golden ops happen to be deletions on this instance.
    spec.iter()
        .map(|&(u, v)| EdgeOp::new(u, v, false))
        .collect()
}

#[test]
fn gradmax_fixed_seed_ops_and_losses_are_golden() {
    let (g, targets) = anomalous_graph(2022);
    assert_eq!(targets, vec![6, 2, 3]);
    let outcome = GradMaxSearch::new(AttackConfig::default())
        .attack(&g, &targets, 12)
        .unwrap();
    let expected = ops(&[
        (2, 6),
        (3, 6),
        (2, 3),
        (4, 6),
        (2, 8),
        (0, 3),
        (6, 9),
        (3, 7),
        (1, 2),
        (6, 7),
        (3, 5),
        (0, 2),
    ]);
    assert_eq!(outcome.ops(12), &expected[..]);
    let expected_losses: [f64; 12] = [
        1.94351319992155095e3,
        1.39928187909451958e3,
        9.60097467409064052e2,
        7.56924208061549507e2,
        6.00192381974462705e2,
        4.68816369636065360e2,
        3.46874685571569785e2,
        2.73973177622735363e2,
        1.98602311514925447e2,
        1.34943440885183747e2,
        9.91054822311116226e1,
        6.19915075353154066e1,
    ];
    assert_eq!(outcome.surrogate_loss_per_budget.len(), 12);
    for (b, (&got, &want)) in outcome
        .surrogate_loss_per_budget
        .iter()
        .zip(&expected_losses)
        .enumerate()
    {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "budget {}: loss {got:e} != golden {want:e}",
            b + 1
        );
    }
}

#[test]
fn binarized_fixed_seed_ops_and_losses_are_golden() {
    let (g, targets) = anomalous_graph(2022);
    let outcome = BinarizedAttack::default()
        .with_iterations(60)
        .with_lambdas(vec![0.01, 0.05])
        .attack(&g, &targets, 10)
        .unwrap();
    let expected: [&[(NodeId, NodeId)]; 10] = [
        &[(2, 6)],
        &[(2, 6), (3, 6)],
        &[(2, 6), (3, 6), (2, 3)],
        &[(2, 6), (3, 6), (2, 3), (4, 6)],
        &[(2, 6), (3, 6), (2, 3), (4, 6), (1, 6)],
        &[(2, 3), (2, 6), (3, 6), (4, 6), (1, 6), (6, 9)],
        &[(2, 6), (3, 6), (2, 3), (4, 6), (1, 6), (6, 7), (6, 9)],
        &[
            (2, 6),
            (3, 6),
            (2, 3),
            (4, 6),
            (1, 6),
            (6, 9),
            (6, 7),
            (2, 8),
        ],
        &[
            (2, 3),
            (2, 6),
            (3, 6),
            (4, 6),
            (1, 6),
            (6, 9),
            (6, 7),
            (2, 8),
            (0, 3),
        ],
        &[
            (2, 3),
            (2, 6),
            (3, 6),
            (4, 6),
            (1, 6),
            (6, 9),
            (6, 7),
            (2, 8),
            (0, 3),
            (3, 4),
        ],
    ];
    for (b, spec) in expected.iter().enumerate() {
        assert_eq!(
            outcome.ops_per_budget[b],
            ops(spec),
            "budget {} diverged from golden",
            b + 1
        );
    }
    let expected_losses: [f64; 10] = [
        1.94351319992155095e3,
        1.39928187909451958e3,
        9.60097467409064052e2,
        7.56924208061549507e2,
        6.43000958277717132e2,
        5.89541234906866748e2,
        5.73927619383414822e2,
        4.07330695377552615e2,
        2.67205733728981158e2,
        1.90843439904175284e2,
    ];
    for (b, (&got, &want)) in outcome
        .surrogate_loss_per_budget
        .iter()
        .zip(&expected_losses)
        .enumerate()
    {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "budget {}: loss {got:e} != golden {want:e}",
            b + 1
        );
    }
}
