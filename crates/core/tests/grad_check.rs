//! Verification of the analytic bi-level gradient (DESIGN.md §3.2)
//! against two independent oracles:
//!
//! 1. the `ba-autodiff` reverse-mode tape, differentiating the *entire*
//!    objective — egonet features from adjacency entries, logs, the 2×2
//!    OLS normal-equation solve, exponentials, squared residuals — and
//! 2. central finite differences on single edge toggles evaluated through
//!    the genuinely discrete pipeline.
//!
//! These tests are the load-bearing evidence that `ba_core::grad`
//! implements the derivative of paper Eq. (5) correctly.

use ba_autodiff::{sum, Tape, Var};
use ba_core::{node_grads, pair_grad};
use ba_graph::{generators, Graph, NodeId};

/// Builds the full surrogate objective on the tape from adjacency
/// variables `a[(i,j)]` (upper triangle, symmetric use), mirroring
/// paper Eq. (5): features → logs → OLS → Σ (E_a − e^ρ)².
fn tape_objective<'t>(
    tape: &'t Tape,
    n_nodes: usize,
    adj: &dyn Fn(usize, usize) -> Var<'t>,
    targets: &[usize],
) -> Var<'t> {
    // N_i = Σ_j A_ij ; E_i = N_i + ½ Σ_{j,k} A_ij A_jk A_ki.
    let mut n_feat: Vec<Var<'t>> = Vec::with_capacity(n_nodes);
    let mut e_feat: Vec<Var<'t>> = Vec::with_capacity(n_nodes);
    for i in 0..n_nodes {
        let deg = sum(tape, (0..n_nodes).filter(|&j| j != i).map(|j| adj(i, j)));
        // Σ over ordered pairs (j,k), j≠k≠i of A_ij A_jk A_ki = 2·triangles.
        let mut tri_terms = Vec::new();
        for j in 0..n_nodes {
            if j == i {
                continue;
            }
            for k in (j + 1)..n_nodes {
                if k == i {
                    continue;
                }
                tri_terms.push(adj(i, j) * adj(j, k) * adj(k, i));
            }
        }
        let tri = sum(tape, tri_terms);
        n_feat.push(deg);
        e_feat.push(deg + tri); // ½ · (A³)_ii = ½ · 2 · triangles = triangles
    }
    // Log features (no clamping on the tape: the test graphs keep
    // features ≥ 1 and perturbations are infinitesimal).
    let u: Vec<Var<'t>> = n_feat.iter().map(|v| v.ln()).collect();
    let v: Vec<Var<'t>> = e_feat.iter().map(|x| x.ln()).collect();
    // OLS via the closed-form 2×2 solve (Cramer's rule on the tape).
    let nn = tape.constant(n_nodes as f64);
    let su = sum(tape, u.iter().copied());
    let suu = sum(tape, u.iter().map(|&x| x * x));
    let sv = sum(tape, v.iter().copied());
    let suv = sum(tape, u.iter().zip(&v).map(|(&a, &b)| a * b));
    let det = nn * suu - su * su;
    let beta0 = (sv * suu - su * suv) / det;
    let beta1 = (nn * suv - sv * su) / det;
    // Loss.
    let mut terms = Vec::new();
    for &a in targets {
        let rho = beta0 + beta1 * u[a];
        let r = e_feat[a] - rho.exp();
        terms.push(r * r);
    }
    sum(tape, terms)
}

/// Runs the tape on graph `g` and compares every pair gradient with the
/// analytic engine. `h_tol` is the max allowed relative discrepancy.
fn check_graph(g: &Graph, targets: &[NodeId], tol: f64) {
    let n = g.num_nodes();
    let tape = Tape::new();
    // Upper-triangle adjacency variables.
    let mut vars = std::collections::HashMap::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let val = if g.has_edge(i as NodeId, j as NodeId) {
                1.0
            } else {
                0.0
            };
            vars.insert((i, j), tape.var(val));
        }
    }
    let adj = |i: usize, j: usize| -> Var<'_> {
        let key = if i < j { (i, j) } else { (j, i) };
        vars[&key]
    };
    let target_idx: Vec<usize> = targets.iter().map(|&t| t as usize).collect();
    let loss = tape_objective(&tape, n, &adj, &target_idx);
    let grads = loss.backward();

    // Analytic side.
    let feats = ba_graph::egonet::egonet_features(g);
    let ng = node_grads(&feats.n, &feats.e, targets).unwrap();

    // Loss values must agree.
    assert!(
        (loss.value - ng.loss).abs() < 1e-9 * (1.0 + ng.loss.abs()),
        "loss mismatch: tape {} vs analytic {}",
        loss.value,
        ng.loss
    );

    // Every pair gradient must agree.
    let mut worst = 0.0f64;
    for i in 0..n as NodeId {
        for j in (i + 1)..n as NodeId {
            let analytic = pair_grad(g, &ng, i, j);
            let tape_grad = grads.wrt(vars[&(i as usize, j as usize)]);
            let denom = analytic.abs().max(tape_grad.abs()).max(1.0);
            let rel = (analytic - tape_grad).abs() / denom;
            worst = worst.max(rel);
            assert!(
                rel < tol,
                "pair ({i},{j}): analytic {analytic} vs tape {tape_grad} (rel {rel})"
            );
        }
    }
    eprintln!("worst relative pair-gradient discrepancy: {worst:.3e}");
}

#[test]
fn analytic_gradient_matches_autodiff_on_er_graph() {
    let mut g = generators::erdos_renyi(25, 0.2, 42);
    generators::attach_isolated(&mut g, 43);
    check_graph(&g, &[0, 3, 7], 1e-7);
}

#[test]
fn analytic_gradient_matches_autodiff_on_ba_graph() {
    let g = generators::barabasi_albert(22, 3, 7);
    check_graph(&g, &[1, 5], 1e-7);
}

#[test]
fn analytic_gradient_matches_autodiff_with_planted_clique() {
    let mut g = generators::erdos_renyi(20, 0.2, 9);
    generators::attach_isolated(&mut g, 10);
    generators::plant_near_clique(&mut g, &[0, 1, 2, 3, 4], 1.0, 11);
    check_graph(&g, &[0, 2], 1e-7);
}

#[test]
fn analytic_gradient_matches_autodiff_with_star_target() {
    let mut g = generators::erdos_renyi(20, 0.15, 13);
    generators::attach_isolated(&mut g, 14);
    generators::plant_near_star(&mut g, 5, 10, 15);
    check_graph(&g, &[5], 1e-7);
}

#[test]
fn analytic_gradient_matches_autodiff_single_target_many_seeds() {
    for seed in [21, 22, 23] {
        let mut g = generators::erdos_renyi(15, 0.25, seed);
        generators::attach_isolated(&mut g, seed + 100);
        check_graph(&g, &[seed as NodeId % 15], 1e-7);
    }
}

/// Discrete sanity check: the sign of the analytic gradient must predict
/// the direction of the loss change under an actual ±1 edge toggle for
/// the pairs with the largest gradients (where the linearisation is most
/// trustworthy).
#[test]
fn gradient_sign_predicts_discrete_toggle_direction() {
    let mut g = generators::erdos_renyi(60, 0.1, 77);
    generators::attach_isolated(&mut g, 78);
    generators::plant_near_clique(&mut g, &[0, 1, 2, 3, 4, 5], 1.0, 79);
    let targets: Vec<NodeId> = vec![0, 1];
    let feats = ba_graph::egonet::egonet_features(&g);
    let ng = node_grads(&feats.n, &feats.e, &targets).unwrap();
    let base_loss = ng.loss;

    // Collect the 5 largest-|gradient| pairs.
    let mut pairs: Vec<(NodeId, NodeId, f64)> = Vec::new();
    for i in 0..g.num_nodes() as NodeId {
        for j in (i + 1)..g.num_nodes() as NodeId {
            pairs.push((i, j, pair_grad(&g, &ng, i, j)));
        }
    }
    pairs.sort_by(|a, b| b.2.abs().total_cmp(&a.2.abs()));
    let mut correct = 0;
    let mut total = 0;
    for &(i, j, grad) in pairs.iter().take(5) {
        let mut g2 = g.clone();
        g2.toggle_edge(i, j);
        let f2 = ba_graph::egonet::egonet_features(&g2);
        let new_loss = ba_core::surrogate_loss_from_features(&f2.n, &f2.e, &targets).unwrap();
        let delta = new_loss - base_loss;
        // Toggling moves A_ij by +1 (add) or −1 (delete); predicted sign:
        let was_edge = g.has_edge(i, j);
        let predicted = if was_edge { -grad } else { grad };
        total += 1;
        if predicted.signum() == delta.signum() || delta.abs() < 1e-9 {
            correct += 1;
        }
    }
    assert!(
        correct >= total - 1,
        "gradient sign predicted only {correct}/{total} toggle directions"
    );
}
