//! Property-based tests of the attack invariants: on arbitrary random
//! graphs and target sets, every attack must respect its budget, the
//! no-singleton rule, op-kind restrictions, pair uniqueness, and
//! determinism — and the gradient engine must stay consistent with the
//! loss it claims to differentiate.

use ba_core::{
    node_grads, pair_grad, surrogate_loss_from_features, AttackConfig, BinarizedAttack,
    CandidateScope, EdgeOpKind, GradMaxSearch, RandomAttack, StructuralAttack,
};
use ba_graph::egonet::egonet_features;
use ba_graph::{generators, Graph, NodeId};
use proptest::prelude::*;

/// A connected-ish random graph with degree variance (so the OLS design
/// matrix is non-singular) plus planted structure.
fn arb_attack_instance() -> impl Strategy<Value = (Graph, Vec<NodeId>)> {
    (30usize..70, 0u64..1000, 1usize..4).prop_map(|(n, seed, tcount)| {
        let mut g = generators::erdos_renyi(n, 6.0 / n as f64, seed);
        generators::attach_isolated(&mut g, seed + 1);
        let clique: Vec<NodeId> = (0..(n as NodeId / 6).max(4)).collect();
        generators::plant_near_clique(&mut g, &clique, 1.0, seed + 2);
        let targets: Vec<NodeId> = (0..tcount as NodeId).collect();
        (g, targets)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn gradmax_invariants((g, targets) in arb_attack_instance(), budget in 1usize..10) {
        let outcome = GradMaxSearch::default().attack(&g, &targets, budget).unwrap();
        prop_assert!(outcome.max_budget() <= budget);
        for (b, ops) in outcome.ops_per_budget.iter().enumerate() {
            prop_assert_eq!(ops.len(), b + 1);
        }
        // No singleton creation, no duplicate pairs.
        let final_ops = outcome.ops(budget);
        let mut seen = std::collections::HashSet::new();
        for op in final_ops {
            prop_assert!(seen.insert((op.u, op.v)));
        }
        let poisoned = outcome.poisoned_graph(&g, budget);
        for u in 0..g.num_nodes() as NodeId {
            if g.degree(u) > 0 {
                prop_assert!(poisoned.degree(u) > 0, "node {} isolated", u);
            }
        }
        // Greedy surrogate loss is monotone non-increasing by construction.
        for w in outcome.surrogate_loss_per_budget.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9, "greedy loss increased: {:?}", w);
        }
    }

    #[test]
    fn binarized_invariants((g, targets) in arb_attack_instance(), budget in 1usize..8) {
        let attack = BinarizedAttack::default().with_iterations(30).with_lambdas(vec![0.01]);
        let outcome = attack.attack(&g, &targets, budget).unwrap();
        prop_assert_eq!(outcome.max_budget(), budget);
        // Budget-monotone surrogate loss (the extraction guard).
        for w in outcome.surrogate_loss_per_budget.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-9, "extraction loss increased: {:?}", w);
        }
        // Ops are valid against the clean graph: added edges were absent,
        // deleted edges were present.
        for op in outcome.ops(budget) {
            if op.added {
                prop_assert!(!g.has_edge(op.u, op.v));
            } else {
                prop_assert!(g.has_edge(op.u, op.v));
            }
        }
    }

    #[test]
    fn op_kind_respected((g, targets) in arb_attack_instance()) {
        for kind in [EdgeOpKind::AddOnly, EdgeOpKind::DeleteOnly] {
            let cfg = AttackConfig { op_kind: kind, ..AttackConfig::default() };
            let attack = BinarizedAttack::new(cfg).with_iterations(25).with_lambdas(vec![0.01]);
            let outcome = attack.attack(&g, &targets, 5).unwrap();
            for op in outcome.ops(5) {
                match kind {
                    EdgeOpKind::AddOnly => prop_assert!(op.added),
                    EdgeOpKind::DeleteOnly => prop_assert!(!op.added),
                    EdgeOpKind::Both => {}
                }
            }
        }
    }

    #[test]
    fn determinism_across_runs((g, targets) in arb_attack_instance()) {
        let a1 = GradMaxSearch::default().attack(&g, &targets, 5).unwrap();
        let a2 = GradMaxSearch::default().attack(&g, &targets, 5).unwrap();
        prop_assert_eq!(a1.ops_per_budget, a2.ops_per_budget);
        let r1 = RandomAttack::default().attack(&g, &targets, 5).unwrap();
        let r2 = RandomAttack::default().attack(&g, &targets, 5).unwrap();
        prop_assert_eq!(r1.ops_per_budget, r2.ops_per_budget);
    }

    #[test]
    fn scoped_ops_stay_in_scope((g, targets) in arb_attack_instance()) {
        let cfg = AttackConfig {
            scope: CandidateScope::TargetNeighborhood,
            ..AttackConfig::default()
        };
        let attack = BinarizedAttack::new(cfg).with_iterations(25).with_lambdas(vec![0.01]);
        let outcome = attack.attack(&g, &targets, 6).unwrap();
        let tset: std::collections::HashSet<NodeId> = targets.iter().copied().collect();
        for op in outcome.ops(6) {
            let in_scope = tset.contains(&op.u)
                || tset.contains(&op.v)
                || targets.iter().any(|&t| {
                    g.neighbors(t).contains(&op.u) && g.neighbors(t).contains(&op.v)
                });
            prop_assert!(in_scope, "op {:?} outside candidate scope", op);
        }
    }

    #[test]
    fn node_grads_loss_equals_direct_loss((g, targets) in arb_attack_instance()) {
        let f = egonet_features(&g);
        let ng = node_grads(&f.n, &f.e, &targets).unwrap();
        let direct = surrogate_loss_from_features(&f.n, &f.e, &targets).unwrap();
        prop_assert!((ng.loss - direct).abs() < 1e-9 * (1.0 + direct));
    }

    #[test]
    fn pair_grad_symmetry((g, targets) in arb_attack_instance(), i in 0u32..50, j in 0u32..50) {
        let n = g.num_nodes() as NodeId;
        let (i, j) = (i % n, j % n);
        prop_assume!(i != j);
        let f = egonet_features(&g);
        let ng = node_grads(&f.n, &f.e, &targets).unwrap();
        prop_assert_eq!(pair_grad(&g, &ng, i, j), pair_grad(&g, &ng, j, i));
    }

    #[test]
    fn attack_result_applies_cleanly((g, targets) in arb_attack_instance(), budget in 1usize..8) {
        // with_ops on the recorded ops must never panic (internal
        // consistency of the EdgeOp records) and must change exactly
        // |ops| adjacency entries.
        let outcome = GradMaxSearch::default().attack(&g, &targets, budget).unwrap();
        let ops = outcome.ops(budget);
        let poisoned = outcome.poisoned_graph(&g, budget);
        let diff = g.diff_ops(&poisoned);
        prop_assert_eq!(diff.len(), ops.len());
    }
}
