//! Property tests for the incremental AScore-curve engine: replaying an
//! op sequence through one `DeltaOverlay` + `IncrementalEgonet` +
//! `IncrementalFit` must reproduce the from-scratch per-budget refit
//! **bit-identically** — for OLS (compensated sufficient statistics) and
//! for the robust regressors (which rerun over the cached log rows, so
//! equality is exact by construction).

use ba_core::{AttackOutcome, CurveError};
use ba_graph::{generators, CsrGraph, EdgeOp, Graph, NodeId};
use ba_oddball::{OddBall, Regressor};
use proptest::prelude::*;

const N: u32 = 70;

fn er(seed: u64) -> Graph {
    let mut g = generators::erdos_renyi(N as usize, 0.07, seed);
    generators::attach_isolated(&mut g, seed + 1);
    g
}

fn ba(seed: u64) -> Graph {
    generators::barabasi_albert(N as usize, 3, seed)
}

/// Builds per-budget op sets from a toggle script. `nested` mimics the
/// greedy attacks (budget `b` = first `b` toggles); non-nested mimics
/// the PGD extractions (each budget re-derives its own set, here by
/// dropping one early toggle and keeping the tail).
fn outcome_from_script(g: &Graph, script: &[(NodeId, NodeId)], nested: bool) -> AttackOutcome {
    let mut state = g.clone();
    let mut ops: Vec<EdgeOp> = Vec::new();
    for &(u, v) in script {
        if u == v {
            continue;
        }
        let added = !state.has_edge(u, v);
        if added {
            state.add_edge(u, v);
        } else {
            state.remove_edge(u, v);
        }
        ops.push(EdgeOp::new(u, v, added));
    }
    let ops_per_budget: Vec<Vec<EdgeOp>> = (1..=ops.len())
        .map(|b| {
            if nested {
                ops[..b].to_vec()
            } else {
                // Drop op `b/2` from the prefix: consecutive budgets now
                // differ by more than a pure extension. Only a pair that
                // the prefix touches exactly once can be dropped — other
                // ops' add/remove directions never depend on it, so the
                // remaining sequence still applies cleanly (`apply_ops`
                // debug-asserts direction consistency).
                let mut set = ops[..b].to_vec();
                if b > 2 {
                    let c = b / 2;
                    let pair = (ops[c].u, ops[c].v);
                    if ops[..b].iter().filter(|o| (o.u, o.v) == pair).count() == 1 {
                        set.remove(c);
                    }
                }
                set
            }
        })
        .collect();
    AttackOutcome {
        name: "scripted".into(),
        surrogate_loss_per_budget: vec![0.0; ops_per_budget.len()],
        ops_per_budget,
        loss_trajectory: vec![],
    }
}

fn assert_curves_bit_identical(
    g: &Graph,
    outcome: &AttackOutcome,
    targets: &[NodeId],
    regressor: Regressor,
) -> Result<(), TestCaseError> {
    let csr = CsrGraph::from(g);
    let detector = OddBall::new(regressor);
    let clean = match detector.fit(&csr) {
        Ok(m) => m,
        // A degenerate random instance is vacuous for this property.
        Err(_) => return Ok(()),
    };
    let fast = outcome.ascore_curve_with_clean(&csr, &clean, targets, &detector);
    let slow = outcome.ascore_curve_full_refit(&csr, &clean, targets, &detector);
    match (fast, slow) {
        (Ok(fast), Ok(slow)) => {
            prop_assert_eq!(fast.len(), slow.len());
            for (b, (f, s)) in fast.iter().zip(&slow).enumerate() {
                prop_assert_eq!(
                    f.to_bits(),
                    s.to_bits(),
                    "{:?}: budget {}: incremental {} != full {}",
                    regressor,
                    b,
                    f,
                    s
                );
            }
        }
        // Both paths must agree on *where* a degenerate budget fails.
        (Err(ef), Err(es)) => prop_assert_eq!(ef, es),
        (fast, slow) => {
            return Err(TestCaseError::fail(format!(
                "{regressor:?}: one path failed, the other did not: \
                 incremental {fast:?} vs full {slow:?}"
            )))
        }
    }
    Ok(())
}

fn regressors() -> [Regressor; 3] {
    [
        Regressor::Ols,
        Regressor::default_huber(),
        Regressor::default_ransac(17),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Nested (greedy-shaped) op sequences on ER graphs, all regressors.
    #[test]
    fn incremental_equals_full_refit_nested_er(
        seed in 0u64..12,
        script in proptest::collection::vec((0u32..N, 0u32..N), 1..24),
        targets in proptest::collection::vec(0u32..N, 1..6),
    ) {
        let g = er(seed);
        let outcome = outcome_from_script(&g, &script, true);
        for regressor in regressors() {
            assert_curves_bit_identical(&g, &outcome, &targets, regressor)?;
        }
    }

    /// Non-nested (PGD-shaped) op sets on BA graphs, all regressors.
    #[test]
    fn incremental_equals_full_refit_non_nested_ba(
        seed in 0u64..12,
        script in proptest::collection::vec((0u32..N, 0u32..N), 1..24),
        targets in proptest::collection::vec(0u32..N, 1..6),
    ) {
        let g = ba(seed + 100);
        let outcome = outcome_from_script(&g, &script, false);
        for regressor in regressors() {
            assert_curves_bit_identical(&g, &outcome, &targets, regressor)?;
        }
    }
}

/// The engine end-to-end on a real attack outcome (nested greedy ops)
/// with a degenerate-failure check folded in: budgets after the failure
/// point are unreachable through both paths.
#[test]
fn real_attack_outcome_evaluates_identically() {
    use ba_core::{AttackConfig, GradMaxSearch, StructuralAttack};
    let mut g = generators::erdos_renyi(150, 0.04, 2022);
    generators::attach_isolated(&mut g, 2023);
    generators::plant_near_clique(&mut g, &(0..10).collect::<Vec<_>>(), 1.0, 2024);
    let model = OddBall::default().fit(&g).unwrap();
    let targets: Vec<NodeId> = model.top_k(3).into_iter().map(|(i, _)| i).collect();
    let outcome = GradMaxSearch::new(AttackConfig::default())
        .attack(&g, &targets, 10)
        .unwrap();
    let csr = CsrGraph::from(&g);
    for regressor in regressors() {
        let detector = OddBall::new(regressor);
        let clean = detector.fit(&csr).unwrap();
        let fast = outcome
            .ascore_curve_with_clean(&csr, &clean, &targets, &detector)
            .unwrap();
        let slow = outcome
            .ascore_curve_full_refit(&csr, &clean, &targets, &detector)
            .unwrap();
        assert_eq!(fast.len(), slow.len());
        for (b, (f, s)) in fast.iter().zip(&slow).enumerate() {
            assert_eq!(f.to_bits(), s.to_bits(), "{regressor:?} budget {b}");
        }
        // The curve must actually move under the attack.
        assert!(fast[fast.len() - 1] < fast[0], "{regressor:?}: {fast:?}");
    }
}

/// `CurveError` equality used by the proptest is meaningful: construct
/// the degenerate case deterministically.
#[test]
fn degenerate_budget_reported_identically() {
    // 8-cycle plus one chord; deleting the chord at budget 1 makes the
    // graph regular → singular OLS.
    let n = 8u32;
    let mut g = Graph::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n)));
    g.add_edge(0, 4);
    let csr = CsrGraph::from(&g);
    let detector = OddBall::default();
    let clean = detector.fit(&csr).unwrap();
    let outcome = AttackOutcome {
        name: "chord-delete".into(),
        ops_per_budget: vec![vec![EdgeOp::new(0, 4, false)]],
        surrogate_loss_per_budget: vec![0.0],
        loss_trajectory: vec![],
    };
    let fast = outcome
        .ascore_curve_with_clean(&csr, &clean, &[0], &detector)
        .unwrap_err();
    let slow = outcome
        .ascore_curve_full_refit(&csr, &clean, &[0], &detector)
        .unwrap_err();
    assert_eq!(fast, slow);
    assert_eq!(
        fast,
        CurveError {
            budget: 1,
            source: fast.source
        }
    );
}
