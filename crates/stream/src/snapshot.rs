//! Bit-exact engine snapshots: a killed stream resumes byte-identically.
//!
//! The snapshot reuses `ba_bench::artifact`'s durability primitives —
//! [`write_atomic`] (temp file + rename, so a crash mid-save never
//! leaves a torn snapshot visible) and the exact IEEE-754 text codec
//! ([`enc_f64`]/[`dec_f64`]) for every float. The overlay's dirty rows
//! are stored verbatim (not just the materialised edge set), so a
//! restored engine carries the *same* dirty-row count and therefore
//! compacts at the same future batches as the uninterrupted run —
//! keeping even the `compacted` flags of later summaries identical.
//!
//! Features and regression state are re-derived on restore rather than
//! stored: features are exact integer counts, and the incremental-fit
//! engine guarantees a fresh accumulation of the same rows refits
//! bit-identically to the churned statistics (the stored `params` line
//! is verified against the re-derived fit as an integrity check).

use crate::{StreamConfig, StreamEngine};
// Re-exported so downstream consumers (the CLI's exact-score output)
// can use the snapshot's float codec without a ba-bench dependency.
use ba_bench::artifact::write_atomic;
pub use ba_bench::artifact::{dec_f64, enc_f64};
use ba_graph::{Graph, GraphView, NodeId, OverlayEdits};
use ba_oddball::Regressor;
use std::path::Path;

const MAGIC: &str = "ba-stream-snapshot v1";

/// Errors raised while restoring a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// The file is not a well-formed v1 snapshot.
    Malformed(String),
    /// The stored parameters disagree with the re-derived fit — the
    /// snapshot was not produced by this engine version/state.
    ParamsMismatch,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io error: {e}"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::ParamsMismatch => {
                write!(f, "restored fit disagrees with the stored parameters")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn enc_regressor(r: Regressor) -> String {
    match r {
        Regressor::Ols => "ols".to_string(),
        Regressor::Huber { k } => format!("huber {}", enc_f64(k)),
        Regressor::Ransac {
            trials,
            inlier_k,
            seed,
        } => format!("ransac {trials} {} {seed}", enc_f64(inlier_k)),
    }
}

fn dec_regressor(s: &str) -> Option<Regressor> {
    let mut parts = s.split_whitespace();
    match parts.next()? {
        "ols" => Some(Regressor::Ols),
        "huber" => Some(Regressor::Huber {
            k: dec_f64(parts.next()?)?,
        }),
        "ransac" => Some(Regressor::Ransac {
            trials: parts.next()?.parse().ok()?,
            inlier_k: dec_f64(parts.next()?)?,
            seed: parts.next()?.parse().ok()?,
        }),
        _ => None,
    }
}

impl StreamEngine {
    /// Saves the engine state atomically (temp file + rename).
    pub fn save_snapshot<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let base = self.base();
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!(
            "regressor {}\n",
            enc_regressor(self.config().regressor)
        ));
        out.push_str(&format!(
            "compact_fraction {}\n",
            enc_f64(self.config().compact_fraction)
        ));
        out.push_str(&format!("nodes {}\n", self.num_nodes()));
        out.push_str(&format!(
            "counters {} {} {}\n",
            self.batches_ingested(),
            self.events_ingested(),
            self.compactions()
        ));
        out.push_str(&format!("base {}\n", base.num_edges()));
        base.for_each_edge(|u, v| {
            out.push_str(&format!("{u} {v}\n"));
        });
        let rows = self.edits().dirty_rows_sorted();
        out.push_str(&format!("edits {} {}\n", rows.len(), self.num_edges()));
        for (u, row) in rows {
            out.push_str(&format!("{u} {}", row.len()));
            for v in row {
                out.push_str(&format!(" {v}"));
            }
            out.push('\n');
        }
        match self.params() {
            Ok(p) => out.push_str(&format!(
                "params ok {} {}\n",
                enc_f64(p.beta0),
                enc_f64(p.beta1)
            )),
            Err(reason) => out.push_str(&format!("params err {reason}\n")),
        }
        out.push_str("end\n");
        write_atomic(path.as_ref(), &out)
    }

    /// Restores an engine from a snapshot. `shards` is a runtime knob,
    /// not part of the persisted state — outputs are byte-identical at
    /// any value.
    pub fn restore_snapshot<P: AsRef<Path>>(path: P, shards: usize) -> Result<Self, SnapshotError> {
        let text = std::fs::read_to_string(path)?;
        let malformed = |what: &str| SnapshotError::Malformed(what.to_string());
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(malformed("missing header"));
        }
        fn field(lines: &mut std::str::Lines<'_>, key: &str) -> Result<String, SnapshotError> {
            let line = lines
                .next()
                .ok_or_else(|| SnapshotError::Malformed(format!("missing {key}")))?;
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or_else(|| {
                    SnapshotError::Malformed(format!("expected {key} line, got {line:?}"))
                })
        }
        let regressor = dec_regressor(&field(&mut lines, "regressor")?)
            .ok_or_else(|| malformed("regressor"))?;
        let compact_fraction = dec_f64(&field(&mut lines, "compact_fraction")?)
            .ok_or_else(|| malformed("compact_fraction"))?;
        let nodes: usize = field(&mut lines, "nodes")?
            .parse()
            .map_err(|_| malformed("nodes"))?;
        let counters: Vec<u64> = field(&mut lines, "counters")?
            .split_whitespace()
            .map(|t| t.parse())
            .collect::<Result<_, _>>()
            .map_err(|_| malformed("counters"))?;
        let [batches, events_seen, compactions] = counters[..] else {
            return Err(malformed("counters arity"));
        };

        let base_edges: usize = field(&mut lines, "base")?
            .parse()
            .map_err(|_| malformed("base"))?;
        let mut g = Graph::new(nodes);
        for _ in 0..base_edges {
            let line = lines.next().ok_or_else(|| malformed("base edge"))?;
            let (u, v): (NodeId, NodeId) = line
                .split_once(' ')
                .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
                .ok_or_else(|| malformed("base edge"))?;
            // Range-check before Graph::add_edge, whose out-of-range
            // assert would panic instead of returning Malformed.
            if u as usize >= nodes || v as usize >= nodes {
                return Err(malformed("base edge node out of range"));
            }
            if !g.add_edge(u, v) {
                return Err(malformed("duplicate base edge"));
            }
        }
        let base = ba_graph::CsrGraph::from(&g);

        let edits_line = field(&mut lines, "edits")?;
        let (dirty_count, num_edges) = edits_line
            .split_once(' ')
            .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
            .ok_or_else(|| malformed("edits"))?;
        let mut dirty_rows: Vec<(NodeId, Vec<NodeId>)> = Vec::with_capacity(dirty_count);
        for _ in 0..dirty_count {
            let line = lines.next().ok_or_else(|| malformed("edit row"))?;
            let mut toks = line.split_whitespace();
            let parsed = (|| {
                let u: NodeId = toks.next()?.parse().ok()?;
                let len: usize = toks.next()?.parse().ok()?;
                let row: Vec<NodeId> = toks.map(|t| t.parse().ok()).collect::<Option<_>>()?;
                // Out-of-range ids would index out of bounds in
                // OverlayEdits::from_rows; reject them here instead.
                let in_range = (u as usize) < nodes && row.iter().all(|&v| (v as usize) < nodes);
                (in_range && row.len() == len && row.windows(2).all(|w| w[0] < w[1]))
                    .then_some((u, row))
            })();
            dirty_rows.push(parsed.ok_or_else(|| malformed("edit row"))?);
        }
        let edits = if dirty_rows.is_empty() {
            OverlayEdits::default()
        } else {
            OverlayEdits::from_rows(nodes, num_edges, dirty_rows)
        };

        let params_line = lines.next().ok_or_else(|| malformed("params"))?;
        if lines.next() != Some("end") {
            return Err(malformed("missing end marker (truncated?)"));
        }

        let cfg = StreamConfig {
            shards,
            compact_fraction,
            regressor,
        };
        let engine = Self::from_parts(base, edits, cfg, batches, events_seen, compactions);
        // Integrity check: the re-derived fit must reproduce the stored
        // parameters bit-for-bit (or the same degeneracy).
        let stored_ok = params_line.strip_prefix("params ok ").map(|rest| {
            rest.split_once(' ')
                .and_then(|(a, b)| Some((dec_f64(a)?, dec_f64(b)?)))
        });
        match (stored_ok, engine.params()) {
            (Some(Some((b0, b1))), Ok(p))
                if b0.to_bits() == p.beta0.to_bits() && b1.to_bits() == p.beta1.to_bits() => {}
            (Some(_), _) => return Err(SnapshotError::ParamsMismatch),
            (None, Err(_)) if params_line.starts_with("params err ") => {}
            (None, Ok(_)) if params_line.starts_with("params err ") => {
                return Err(SnapshotError::ParamsMismatch)
            }
            (None, _) => return Err(malformed("params")),
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::synthetic_stream;
    use ba_graph::generators;

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ba_stream_snapshot_{tag}"))
    }

    #[test]
    fn save_restore_roundtrips_state() {
        let g = generators::erdos_renyi(120, 0.05, 3);
        let mut engine = StreamEngine::new(&g, StreamConfig::default());
        let events = synthetic_stream(&g, 120, 8);
        for batch in events.chunks(30) {
            engine.ingest_batch(batch);
        }
        let path = temp("roundtrip");
        engine.save_snapshot(&path).unwrap();
        let restored = StreamEngine::restore_snapshot(&path, 1).unwrap();
        assert_eq!(restored.num_nodes(), engine.num_nodes());
        assert_eq!(restored.num_edges(), engine.num_edges());
        assert_eq!(restored.batches_ingested(), engine.batches_ingested());
        assert_eq!(restored.events_ingested(), engine.events_ingested());
        assert_eq!(restored.compactions(), engine.compactions());
        assert_eq!(restored.dirty_rows(), engine.dirty_rows());
        assert_eq!(restored.to_graph(), engine.to_graph());
        assert_eq!(restored.features(), engine.features());
        let (a, b) = (restored.params().unwrap(), engine.params().unwrap());
        assert_eq!(a.beta0.to_bits(), b.beta0.to_bits());
        assert_eq!(a.beta1.to_bits(), b.beta1.to_bits());
        // No stray temp file from the atomic write.
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_snapshot_rejected() {
        let g = generators::erdos_renyi(40, 0.1, 1);
        let engine = StreamEngine::new(&g, StreamConfig::default());
        let path = temp("truncated");
        engine.save_snapshot(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let cut = text.len() - 10;
        std::fs::write(&path, &text[..cut]).unwrap();
        assert!(matches!(
            StreamEngine::restore_snapshot(&path, 1),
            Err(SnapshotError::Malformed(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_of_range_node_ids_rejected_not_panicked() {
        let g = generators::erdos_renyi(40, 0.1, 1);
        let mut engine = StreamEngine::new(&g, StreamConfig::default());
        // Dirty a row so the snapshot carries an edits section too.
        engine.ingest_batch(&[crate::StreamEvent::new(0, 0, 39, true)]);
        let path = temp("out_of_range");
        engine.save_snapshot(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Corrupt a base-edge endpoint and, separately, an edit-row id.
        let lines: Vec<&str> = text.lines().collect();
        let base_at = lines.iter().position(|l| l.starts_with("base ")).unwrap();
        let edits_at = lines.iter().position(|l| l.starts_with("edits ")).unwrap();
        for corrupt_at in [base_at + 1, edits_at + 1] {
            let mut bad: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
            let mut toks: Vec<String> = bad[corrupt_at].split(' ').map(str::to_string).collect();
            toks[0] = "5000".to_string();
            bad[corrupt_at] = toks.join(" ");
            std::fs::write(&path, bad.join("\n") + "\n").unwrap();
            assert!(
                matches!(
                    StreamEngine::restore_snapshot(&path, 1),
                    Err(SnapshotError::Malformed(_))
                ),
                "corrupting line {corrupt_at} did not surface as Malformed"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tampered_params_rejected() {
        let g = generators::erdos_renyi(40, 0.1, 1);
        let engine = StreamEngine::new(&g, StreamConfig::default());
        let path = temp("tampered");
        engine.save_snapshot(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let p = engine.params().unwrap();
        let tampered = text.replace(&enc_f64(p.beta0), &enc_f64(p.beta0 + 1.0));
        std::fs::write(&path, tampered).unwrap();
        assert!(matches!(
            StreamEngine::restore_snapshot(&path, 1),
            Err(SnapshotError::ParamsMismatch)
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn regressor_codec_roundtrip() {
        for r in [
            Regressor::Ols,
            Regressor::default_huber(),
            Regressor::default_ransac(99),
        ] {
            assert_eq!(dec_regressor(&enc_regressor(r)), Some(r));
        }
        assert_eq!(dec_regressor("bogus"), None);
    }
}
