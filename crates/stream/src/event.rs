//! Timestamped edge insert/delete events and their file format.
//!
//! An event stream is the engine's only input: `insert {u, v}` /
//! `delete {u, v}` at a monotonically non-decreasing timestamp. The
//! on-disk format mirrors the SNAP-style edge lists `ba-graph::io`
//! reads — one whitespace-separated record per line, `#` comments —
//! extended with the timestamp and the event kind:
//!
//! ```text
//! # t  u  v  kind
//! 0    17  4  +
//! 1    17  4  -
//! ```

use ba_graph::{Graph, GraphView, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// One timestamped edge event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamEvent {
    /// Event timestamp (non-decreasing along the stream).
    pub time: u64,
    /// First endpoint.
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// `true` for an insert, `false` for a delete.
    pub insert: bool,
}

impl StreamEvent {
    /// Convenience constructor.
    pub fn new(time: u64, u: NodeId, v: NodeId, insert: bool) -> Self {
        Self { time, u, v, insert }
    }
}

/// Errors raised while reading an event file.
#[derive(Debug)]
pub enum EventIoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A line could not be parsed as `t u v kind`.
    Parse {
        /// 1-based line number of the offending line.
        line_no: usize,
        /// The offending line (trimmed).
        line: String,
    },
}

impl std::fmt::Display for EventIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventIoError::Io(e) => write!(f, "io error: {e}"),
            EventIoError::Parse { line_no, line } => {
                write!(f, "cannot parse event line {line_no}: {line:?}")
            }
        }
    }
}

impl std::error::Error for EventIoError {}

impl From<std::io::Error> for EventIoError {
    fn from(e: std::io::Error) -> Self {
        EventIoError::Io(e)
    }
}

/// Loads an event stream from a `t u v kind` file.
pub fn load_events<P: AsRef<Path>>(path: P) -> Result<Vec<StreamEvent>, EventIoError> {
    let file = std::fs::File::open(path)?;
    let mut events = Vec::new();
    for (idx, line) in BufReader::new(file).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let parsed = (|| {
            let time: u64 = fields.next()?.parse().ok()?;
            let u: NodeId = fields.next()?.parse().ok()?;
            let v: NodeId = fields.next()?.parse().ok()?;
            let insert = match fields.next()? {
                "+" => true,
                "-" => false,
                _ => return None,
            };
            Some(StreamEvent::new(time, u, v, insert))
        })();
        match parsed {
            Some(ev) => events.push(ev),
            None => {
                return Err(EventIoError::Parse {
                    line_no: idx + 1,
                    line: trimmed.to_string(),
                })
            }
        }
    }
    Ok(events)
}

/// Writes an event stream in the format [`load_events`] reads.
pub fn save_events<P: AsRef<Path>>(events: &[StreamEvent], path: P) -> std::io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# t u v kind")?;
    for ev in events {
        writeln!(
            w,
            "{} {} {} {}",
            ev.time,
            ev.u,
            ev.v,
            if ev.insert { '+' } else { '-' }
        )?;
    }
    w.flush()
}

/// Generates a deterministic synthetic event stream against `g`: each
/// event toggles a uniformly random node pair of the *evolving* graph
/// (insert when absent, delete when present — deletes that would
/// isolate an endpoint are re-drawn), so the stream stays meaningful
/// over any horizon. Timestamps are the event indices.
pub fn synthetic_stream<V: GraphView + ?Sized>(
    g: &V,
    num_events: usize,
    seed: u64,
) -> Vec<StreamEvent> {
    let n = g.num_nodes() as NodeId;
    assert!(n >= 2, "need at least two nodes to toggle edges");
    let mut state = Graph::new(n as usize);
    g.for_each_edge(|u, v| {
        state.add_edge(u, v);
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events = Vec::with_capacity(num_events);
    let mut t = 0u64;
    while events.len() < num_events {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let insert = !state.has_edge(u, v);
        if !insert && !state.deletion_keeps_no_singletons(u, v) {
            continue;
        }
        if insert {
            state.add_edge(u, v);
        } else {
            state.remove_edge(u, v);
        }
        events.push(StreamEvent::new(t, u, v, insert));
        t += 1;
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_graph::generators;

    #[test]
    fn file_roundtrip() {
        let events = vec![
            StreamEvent::new(0, 3, 7, true),
            StreamEvent::new(1, 3, 7, false),
            StreamEvent::new(5, 0, 1, true),
        ];
        let path = std::env::temp_dir().join("ba_stream_events_roundtrip.events");
        save_events(&events, &path).unwrap();
        assert_eq!(load_events(&path).unwrap(), events);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_error_carries_line_number() {
        let path = std::env::temp_dir().join("ba_stream_events_bad.events");
        std::fs::write(&path, "# header\n0 1 2 +\n0 1 bogus +\n").unwrap();
        match load_events(&path) {
            Err(EventIoError::Parse { line_no, .. }) => assert_eq!(line_no, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn synthetic_stream_is_deterministic_and_consistent() {
        let g = generators::erdos_renyi(60, 0.05, 3);
        let a = synthetic_stream(&g, 200, 11);
        let b = synthetic_stream(&g, 200, 11);
        assert_eq!(a, b);
        assert_ne!(a, synthetic_stream(&g, 200, 12));
        // Replaying the stream on the source graph never hits a
        // redundant event: inserts are absent, deletes present.
        let mut state = g.clone();
        for ev in &a {
            if ev.insert {
                assert!(state.add_edge(ev.u, ev.v), "redundant insert {ev:?}");
            } else {
                assert!(state.remove_edge(ev.u, ev.v), "redundant delete {ev:?}");
            }
        }
        // Timestamps are non-decreasing.
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
    }
}
