//! Streaming-ingest micro-benchmark: the incremental stream engine vs a
//! per-batch full refit.
//!
//! Replays a synthetic insert/delete event stream over an Erdős–Rényi
//! base graph in fixed-size batches, two ways:
//!
//! * **engine** — [`ba_stream::StreamEngine`]: net the batch, patch the
//!   touched adjacency rows and feature rows, O(1) OLS refit at the
//!   batch boundary (plus periodic overlay compaction);
//! * **full refit** — maintain a mutable [`ba_graph::Graph`] and, at
//!   every batch boundary, re-extract all egonet features and refit
//!   OddBall from scratch — what serving the stream without the
//!   incremental machinery would cost.
//!
//! The per-batch model parameters are cross-checked bit-identical
//! between the two paths before timing is reported. Exits non-zero if
//! sustained engine ingest is less than 5× the full-refit baseline —
//! the CI gate for the streaming acceptance criterion. `--quick` runs a
//! shorter stream (CI), `--csv` emits a machine-readable line, and
//! `--json PATH` records the result for the perf-trend pipeline
//! (`BENCH_stream.json`).

use ba_bench::report::BenchReport;
use ba_graph::egonet::egonet_features;
use ba_graph::generators;
use ba_oddball::OddBall;
use ba_stream::{synthetic_stream, StreamConfig, StreamEngine, StreamEvent};
use std::time::Instant;

const REQUIRED_SPEEDUP: f64 = 5.0;

fn time_best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// One engine pass over the stream; returns the per-batch betas.
fn run_engine(g: &ba_graph::Graph, batches: &[&[StreamEvent]], shards: usize) -> Vec<(u64, u64)> {
    let mut engine = StreamEngine::new(
        g,
        StreamConfig {
            shards,
            ..StreamConfig::default()
        },
    );
    batches
        .iter()
        .map(|batch| {
            let p = engine
                .ingest_batch(batch)
                .params
                .expect("engine refit degenerate");
            (p.beta0.to_bits(), p.beta1.to_bits())
        })
        .collect()
}

/// One full-refit pass: apply the batch to a mutable graph, then
/// re-extract features and refit from scratch.
fn run_full_refit(g: &ba_graph::Graph, batches: &[&[StreamEvent]]) -> Vec<(u64, u64)> {
    let mut state = g.clone();
    batches
        .iter()
        .map(|batch| {
            for ev in *batch {
                if ev.insert {
                    state.add_edge(ev.u, ev.v);
                } else {
                    state.remove_edge(ev.u, ev.v);
                }
            }
            let model = OddBall::default()
                .fit_features(egonet_features(&state))
                .expect("full refit degenerate");
            (model.beta0().to_bits(), model.beta1().to_bits())
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let (num_batches, batch_size, engine_reps, full_reps) = if quick {
        (40, 50, 5, 2)
    } else {
        (200, 50, 10, 3)
    };

    // The acceptance instance: ER 2000 nodes / ~10000 edges, batches of
    // 50 events — small relative churn on a graph whose full feature
    // pass is what the baseline pays per batch.
    let n = 2000usize;
    let g = generators::erdos_renyi(n, 0.005, 7);
    let events = synthetic_stream(&g, num_batches * batch_size, 11);
    let batches: Vec<&[StreamEvent]> = events.chunks(batch_size).collect();
    let total_events = events.len();

    eprintln!(
        "graph: n = {n}, m = {}, {} batches x {batch_size} events",
        g.num_edges(),
        batches.len()
    );

    // Cross-check before timing: per-batch betas bit-identical between
    // the engine (at several shard counts) and the full refit.
    let reference = run_full_refit(&g, &batches);
    for shards in [1usize, 4] {
        let engine_betas = run_engine(&g, &batches, shards);
        assert_eq!(
            engine_betas, reference,
            "engine (shards={shards}) and full-refit betas disagree"
        );
    }

    let engine_s = time_best_of(engine_reps, || {
        run_engine(&g, &batches, 1);
    });
    let full_s = time_best_of(full_reps, || {
        run_full_refit(&g, &batches);
    });

    let engine_eps = total_events as f64 / engine_s;
    let full_eps = total_events as f64 / full_s;
    let speedup = full_s / engine_s;
    if csv {
        println!("n,m,batches,batch_size,engine_s,full_s,engine_events_per_sec,speedup");
        println!(
            "{n},{},{},{batch_size},{engine_s:.6},{full_s:.6},{engine_eps:.1},{speedup:.2}",
            g.num_edges(),
            batches.len()
        );
    } else {
        println!(
            "engine ingest:     {:>10.3} ms  ({engine_eps:>12.0} events/s)",
            engine_s * 1e3
        );
        println!(
            "full-refit ingest: {:>10.3} ms  ({full_eps:>12.0} events/s)",
            full_s * 1e3
        );
        println!("speedup:           {speedup:>10.2}x (gate: ≥{REQUIRED_SPEEDUP}x)");
    }
    BenchReport::new("stream")
        .metric("n", n as f64, "count")
        .metric("m", g.num_edges() as f64, "count")
        .metric("batches", batches.len() as f64, "count")
        .metric("batch_size", batch_size as f64, "count")
        .metric("events", total_events as f64, "count")
        .metric("engine_s", engine_s, "s")
        .metric("full_s", full_s, "s")
        .metric("engine_events_per_sec", engine_eps, "events/s")
        .metric("speedup", speedup, "x")
        .write_if_requested(&args)
        .expect("write bench json");
    if speedup < REQUIRED_SPEEDUP {
        eprintln!("FAIL: engine ingest is only {speedup:.2}x faster (need {REQUIRED_SPEEDUP}x)");
        std::process::exit(1);
    }
}
