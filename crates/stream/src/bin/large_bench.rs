//! Million-node substrate benchmark — the nightly-tier scaling gate
//! (DESIGN.md §13, EXPERIMENTS.md "nightly tier").
//!
//! Exercises the whole out-of-core path end to end on a Barabási–Albert
//! graph of ≥ 10^6 nodes / ≥ 10^7 edges (default `n = 1_000_000`,
//! `m = 11`):
//!
//! 1. **verify** — at a small `n`, the streamed generator + u32
//!    builder are cross-checked bit-identical (offsets, columns, edge
//!    hash) against the in-memory generator + u64 CSR; a mismatch
//!    aborts before any timing is reported.
//! 2. **gen** — `barabasi_albert_stream` → `compact::from_edge_stream`:
//!    the graph is born directly in u32 CSR form, never existing as an
//!    edge list or mutable adjacency.
//! 3. **store** — `graphstore::write_chunked` to disk, an out-of-core
//!    chunk fold (`fold_degree_stats`, whose hash must equal the
//!    manifest's), and a fully verified `read_chunked` reload.
//! 4. **score** — `StreamEngine::from_csr` over the promoted graph:
//!    egonet features + OddBall fit + top-k AScore ranking at full
//!    scale, then one event batch through the sharded ingest pipeline.
//!
//! The degree-balanced shard bounds are reported as a max/min edge-load
//! ratio (gate: ≤ 2 on the BA graph, the same invariant the unit suite
//! pins). `--quick` runs a ~100k-node profile for CI smoke; `--json
//! PATH` writes the `BENCH_large.json` perf-trend artifact.

use ba_bench::graphstore;
use ba_bench::report::BenchReport;
use ba_graph::compact::from_edge_stream;
use ba_graph::{generators, CsrGraph, CsrGraph32, GraphView};
use ba_stream::{synthetic_stream, StreamConfig, StreamEngine};
use std::time::Instant;

const SEED: u64 = 0x5ca1e;
const MAX_SHARD_LOAD_RATIO: f64 = 2.0;

fn arg_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

/// Cross-check the streamed u32 path against the in-memory u64 path at
/// a size where both fit comfortably; abort on any divergence.
fn verify_small(n: usize, m: usize) {
    let wide = CsrGraph::from(&generators::barabasi_albert(n, m, SEED));
    let narrow = from_edge_stream(n, || generators::barabasi_albert_stream(n, m, SEED))
        .expect("streamed build failed");
    assert_eq!(
        narrow,
        CsrGraph32::from_csr(&wide).expect("u32 compaction failed"),
        "streamed u32 CSR diverges from in-memory u64 CSR"
    );
    assert_eq!(narrow.promote(), wide, "promotion is not the inverse");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // m = 11 puts the default instance past 10^7 edges:
    // m + (n - m - 1) * m = 10_999_879.
    let n = arg_value(&args, "--n").unwrap_or(if quick { 100_000 } else { 1_000_000 });
    let m = arg_value(&args, "--m").unwrap_or(11);
    let shards = arg_value(&args, "--shards").unwrap_or(8);
    let batch = arg_value(&args, "--batch").unwrap_or(if quick { 2_000 } else { 10_000 });
    let store_dir = std::env::temp_dir().join(format!("ba_large_bench_{n}_{m}"));
    let _ = std::fs::remove_dir_all(&store_dir);

    eprintln!("[verify] small-n bit-identity (streamed u32 vs in-memory u64)");
    verify_small(3_000, m);

    eprintln!("[gen] BA n = {n}, m = {m} via streamed builder");
    let t0 = Instant::now();
    let g32 = from_edge_stream(n, || generators::barabasi_albert_stream(n, m, SEED))
        .expect("streamed build failed");
    let gen_s = t0.elapsed().as_secs_f64();
    let edges = g32.num_edges();
    let resident_bytes = 4 * (n + 1 + 2 * edges);
    eprintln!(
        "      {edges} edges in {gen_s:.2}s ({:.0} edges/s), {:.1} MiB resident CSR",
        edges as f64 / gen_s,
        resident_bytes as f64 / (1024.0 * 1024.0)
    );

    let chunk_rows = 65_536;
    let t0 = Instant::now();
    let meta = graphstore::write_chunked(&store_dir, &g32, chunk_rows).expect("store write failed");
    let write_s = t0.elapsed().as_secs_f64();
    eprintln!(
        "[store] wrote {} chunks ({chunk_rows} rows each) in {write_s:.2}s",
        meta.num_chunks
    );

    let t0 = Instant::now();
    let (max_deg, deg_sum, fold_hash) =
        graphstore::fold_degree_stats(&store_dir).expect("chunk fold failed");
    let fold_s = t0.elapsed().as_secs_f64();
    assert_eq!(deg_sum, 2 * edges, "chunk fold lost entries");
    assert_eq!(fold_hash, g32.edge_hash(), "chunk fold hash mismatch");
    eprintln!("[store] out-of-core fold in {fold_s:.2}s (max degree {max_deg})");

    let t0 = Instant::now();
    let reloaded = graphstore::read_chunked(&store_dir).expect("store read failed");
    let read_s = t0.elapsed().as_secs_f64();
    assert_eq!(reloaded, g32, "store round-trip changed the graph");
    eprintln!("[store] verified full reload in {read_s:.2}s");
    drop(reloaded);
    let _ = std::fs::remove_dir_all(&store_dir);

    let t0 = Instant::now();
    let wide = g32.promote();
    let promote_s = t0.elapsed().as_secs_f64();
    drop(g32);

    // Degree-balanced sharding invariant at full scale.
    let bounds = wide.degree_balanced_bounds(shards);
    let loads: Vec<usize> = (0..shards)
        .map(|k| {
            (bounds[k]..bounds[k + 1])
                .map(|u| wide.degree(u as u32))
                .sum()
        })
        .collect();
    let (lo, hi) = (
        *loads.iter().min().expect("shards >= 1"),
        *loads.iter().max().expect("shards >= 1"),
    );
    let load_ratio = hi as f64 / lo.max(1) as f64;
    eprintln!(
        "[shard] {shards} shards, edge-load ratio {load_ratio:.3} (gate ≤ {MAX_SHARD_LOAD_RATIO})"
    );

    eprintln!("[score] OddBall fit + top-k at full scale");
    let events = synthetic_stream(&wide, batch, SEED + 1);
    let t0 = Instant::now();
    let mut engine = StreamEngine::from_csr(
        wide,
        StreamConfig {
            shards,
            ..StreamConfig::default()
        },
    );
    let fit_s = t0.elapsed().as_secs_f64();
    let top = engine.top_k(10).expect("fit degenerate at scale");
    eprintln!(
        "      fit in {fit_s:.2}s; top AScore node {} ({:.3})",
        top[0].0, top[0].1
    );

    let t0 = Instant::now();
    let summary = engine.ingest_batch(&events);
    let ingest_s = t0.elapsed().as_secs_f64();
    assert!(summary.params.is_ok(), "refit degenerate after batch");
    eprintln!(
        "[ingest] {} events ({} applied, {} dirty rows) in {ingest_s:.2}s",
        events.len(),
        summary.applied,
        summary.dirty_rows
    );

    BenchReport::new("large")
        .metric("n", n as f64, "count")
        .metric("m_edges", edges as f64, "count")
        .metric("resident_csr_bytes", resident_bytes as f64, "bytes")
        .metric("max_degree", max_deg as f64, "count")
        .metric("gen_s", gen_s, "s")
        .metric("gen_edges_per_sec", edges as f64 / gen_s, "edges/s")
        .metric("store_write_s", write_s, "s")
        .metric("store_fold_s", fold_s, "s")
        .metric("store_read_s", read_s, "s")
        .metric("promote_s", promote_s, "s")
        .metric("fit_s", fit_s, "s")
        .metric("ingest_s", ingest_s, "s")
        .metric(
            "ingest_events_per_sec",
            events.len() as f64 / ingest_s,
            "events/s",
        )
        .metric("shards", shards as f64, "count")
        .metric("shard_load_ratio", load_ratio, "x")
        .write_if_requested(&args)
        .expect("write bench json");

    if load_ratio > MAX_SHARD_LOAD_RATIO {
        eprintln!("FAIL: shard edge-load ratio {load_ratio:.3} > {MAX_SHARD_LOAD_RATIO}");
        std::process::exit(1);
    }
}
