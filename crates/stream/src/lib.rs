//! # ba-stream
//!
//! Streaming anomaly-scoring engine for the BinarizedAttack
//! reproduction: the online counterpart to the batch-shaped entry
//! points. The engine ingests batches of timestamped edge
//! insert/delete events, maintains per-node egonet features and an
//! incrementally-refit OddBall model over a frozen
//! [`CsrGraph`](ba_graph::CsrGraph) plus a
//! [`DeltaOverlay`](ba_graph::DeltaOverlay), and serves point-score and
//! top-k anomaly queries between batches.
//!
//! Guarantees (each pinned by tests / CI gates):
//!
//! * **Full-refit equivalence** — after every batch the model and all
//!   scores are bit-identical to refitting OddBall from scratch on the
//!   materialised graph;
//! * **Shard invariance** — ingestion fans row updates and feature
//!   recomputation across `std::thread::scope` shards, with output
//!   byte-identical at any shard count;
//! * **Bit-exact resume** — [`StreamEngine::save_snapshot`] /
//!   [`StreamEngine::restore_snapshot`] (atomic rename + exact IEEE-754
//!   text codec, reused from `ba_bench::artifact`) let a killed stream
//!   continue with byte-identical future output, including compaction
//!   timing;
//! * **O(batch) steady state** — overlay compaction
//!   ([`DeltaOverlay::compact`](ba_graph::DeltaOverlay::compact)) folds
//!   accumulated edits into a fresh frozen base before overlay overhead
//!   degrades ingest (the `stream_bench` bin gates ≥5× sustained
//!   throughput against a per-batch full refit).
//!
//! ## Example
//!
//! ```
//! use ba_graph::generators;
//! use ba_stream::{synthetic_stream, StreamConfig, StreamEngine};
//!
//! let g = generators::erdos_renyi(200, 0.03, 7);
//! let mut engine = StreamEngine::new(&g, StreamConfig::default());
//! for batch in synthetic_stream(&g, 100, 1).chunks(25) {
//!     let summary = engine.ingest_batch(batch);
//!     assert!(summary.params.is_ok());
//! }
//! let top = engine.top_k(5).expect("model is fit");
//! assert_eq!(top.len(), 5);
//! ```

pub mod engine;
pub mod event;
pub mod snapshot;

pub use engine::{BatchSummary, EpochSnapshot, StreamConfig, StreamEngine};
pub use event::{load_events, save_events, synthetic_stream, EventIoError, StreamEvent};
pub use snapshot::SnapshotError;
