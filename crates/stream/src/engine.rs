//! The streaming anomaly-scoring engine.
//!
//! [`StreamEngine`] ingests batches of timestamped edge events over a
//! `CsrGraph + DeltaOverlay` substrate, maintains per-node egonet
//! features and an incrementally-refit OddBall model, and serves
//! point-score and top-k queries between batches. The per-batch
//! pipeline (see DESIGN.md §7 for the complexity model):
//!
//! 1. **Net.** Events are netted against the current edge set: within a
//!    batch only the *final* presence of each touched edge matters
//!    (queries are only served at batch boundaries), so redundant
//!    inserts/deletes and insert→delete churn cost nothing downstream.
//!    Net ops come out keyed in sorted `(u, v)` order — deterministic.
//! 2. **Apply (sharded).** [`DeltaOverlay::apply_ops_sharded`] patches
//!    the touched adjacency rows across a `std::thread::scope` pool;
//!    each shard owns a contiguous node range, so the resulting rows
//!    are byte-identical at any `--shards` value.
//! 3. **Dirty set.** The nodes whose `(N, E)` can have moved: the net
//!    ops' endpoints plus their common neighbours in the pre- and
//!    post-batch graphs (a superset is harmless — unchanged rows are
//!    skipped by the refit's no-op check, so the fitted parameters
//!    depend only on the rows that actually moved). Sorted + deduped.
//! 4. **Recompute (sharded).** `(N_i, E_i)` is re-derived for dirty
//!    nodes by read-only sorted-merge triangle counting over the new
//!    graph — exact integer counts, so recomputation is bit-identical
//!    to incremental patching.
//! 5. **Merge (serial, sorted).** Dirty rows are fed to
//!    [`IncrementalFit::update_row`] in ascending node order — the one
//!    serialisation point that keeps the OLS sufficient statistics
//!    bit-identical across shard counts — then the model refits (O(1)
//!    for OLS) and the batch summary is emitted.
//!
//! **Compaction.** Overlay reads pay an indirection per touched row and
//! resets/compactions pay O(dirty), so once the dirty-row count crosses
//! `compact_fraction · n` the overlay is folded into a fresh frozen
//! `CsrGraph` ([`DeltaOverlay::compact`]) and ingest continues over a
//! clean overlay. Compaction is invisible to scores and adjacency
//! (pinned by proptest), so steady-state ingest stays O(batch).

use crate::StreamEvent;
use ba_graph::egonet::{egonet_features, EgonetFeatures};
use ba_graph::view::merge_common;
use ba_graph::{CsrGraph, DeltaOverlay, EdgeOp, GraphView, NodeId, OverlayEdits};
use ba_oddball::{FitParams, IncrementalFit, Regressor};
use std::collections::BTreeMap;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Ingestion shards (`0` = autodetect). Output is byte-identical at
    /// any value; shards only distribute independent per-row work.
    pub shards: usize,
    /// Compact the overlay into a fresh frozen base once more than
    /// `compact_fraction · num_nodes` rows have diverged.
    pub compact_fraction: f64,
    /// The detector's regression estimator.
    pub regressor: Regressor,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            shards: 0,
            compact_fraction: 0.125,
            regressor: Regressor::Ols,
        }
    }
}

/// What one [`StreamEngine::ingest_batch`] call did. Every field is a
/// pure function of (initial graph, event stream, batch boundaries) —
/// never of shard count or timing — so formatted summaries are safe to
/// byte-compare across `--shards` values and snapshot/restore cuts.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSummary {
    /// 1-based index of this batch since the engine was created.
    pub batch: u64,
    /// Events presented to the batch.
    pub events: usize,
    /// Net edge flips actually applied (after in-batch netting).
    pub applied: usize,
    /// Feature rows that moved and were re-fed to the regression.
    pub dirty_rows: usize,
    /// Edges after the batch.
    pub edges: usize,
    /// Whether this batch triggered an overlay compaction.
    pub compacted: bool,
    /// The refit model, or the degeneracy reason.
    pub params: Result<FitParams, String>,
}

/// A frozen, immutable view of the engine at one batch boundary: the
/// *epoch handle* the serving layer (`ba-serve`) publishes behind an
/// atomically swapped `Arc` so readers never block ingest.
///
/// The graph is fully compacted ([`DeltaOverlay::compact`]) — no
/// overlay indirection survives into the snapshot, so concurrent
/// readers pay frozen-CSR read costs and hold no reference into the
/// live engine. Every field is a pure function of (initial graph,
/// ingested event prefix), never of shard count or timing, which is
/// what makes epoch-pinned responses replayable byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnapshot {
    /// Epoch number: the count of batches ingested when frozen (the
    /// initial fit, before any ingest, is epoch 0).
    pub epoch: u64,
    /// The compacted edge set at this epoch.
    pub graph: CsrGraph,
    /// Per-node `(N, E)` egonet features at this epoch.
    pub feats: EgonetFeatures,
    /// The fitted model, or the degeneracy reason.
    pub params: Result<FitParams, String>,
}

impl EpochSnapshot {
    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of edges at this epoch.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Anomaly score of one node under this epoch's model.
    pub fn score(&self, node: NodeId) -> Result<f64, &str> {
        let params = self.params.as_ref().map_err(|e| e.as_str())?;
        Ok(params.score(self.feats.n[node as usize], self.feats.e[node as usize]))
    }

    /// The `k` highest-scoring nodes as `(node, score)`, descending;
    /// ties break toward smaller ids — the same deterministic order as
    /// [`StreamEngine::top_k`].
    pub fn top_k(&self, k: usize) -> Result<Vec<(NodeId, f64)>, &str> {
        let params = self.params.as_ref().map_err(|e| e.as_str())?;
        Ok(top_k_from(params, &self.feats, k))
    }
}

/// The streaming engine. See the module docs for the batch pipeline.
#[derive(Debug, Clone)]
pub struct StreamEngine {
    cfg: StreamConfig,
    base: CsrGraph,
    edits: OverlayEdits,
    feats: EgonetFeatures,
    fit: IncrementalFit,
    params: Result<FitParams, String>,
    batches: u64,
    events_seen: u64,
    compactions: u64,
}

impl StreamEngine {
    /// Builds the engine over an initial graph: freezes it into the CSR
    /// base, extracts features, and fits the detector once.
    pub fn new<V: GraphView + ?Sized>(initial: &V, cfg: StreamConfig) -> Self {
        Self::from_parts(
            CsrGraph::from_view(initial),
            OverlayEdits::default(),
            cfg,
            0,
            0,
            0,
        )
    }

    /// Builds the engine directly over a prebuilt frozen [`CsrGraph`],
    /// skipping the [`CsrGraph::from_view`] copy [`StreamEngine::new`]
    /// pays. This is the bootstrap path for million-node bases that
    /// were streamed straight into CSR form (`ba_graph::compact`) and
    /// never existed as a mutable graph — features and the initial fit
    /// are derived exactly as `new` would.
    pub fn from_csr(base: CsrGraph, cfg: StreamConfig) -> Self {
        Self::from_parts(base, OverlayEdits::default(), cfg, 0, 0, 0)
    }

    /// Rebuilds an engine from snapshot parts: the frozen base, the
    /// overlay edits, and the stream counters. Features and the fit are
    /// re-derived — bit-identical to the states the live engine held
    /// (features are exact integer counts; the refit contract is pinned
    /// by `ba-oddball`'s incremental-fit equivalence suite).
    pub(crate) fn from_parts(
        base: CsrGraph,
        edits: OverlayEdits,
        cfg: StreamConfig,
        batches: u64,
        events_seen: u64,
        compactions: u64,
    ) -> Self {
        let view = DeltaOverlay::attach(&base, edits);
        let feats = egonet_features(&view);
        let edits = view.detach();
        let fit = IncrementalFit::new(cfg.regressor, &feats);
        let params = fit.refit().map_err(|e| e.to_string());
        Self {
            cfg,
            base,
            edits,
            feats,
            fit,
            params,
            batches,
            events_seen,
            compactions,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Number of nodes (fixed for the engine's lifetime).
    pub fn num_nodes(&self) -> usize {
        self.base.num_nodes()
    }

    /// Current number of edges.
    pub fn num_edges(&self) -> usize {
        self.edits.num_edges_over(&self.base)
    }

    /// Batches ingested so far.
    pub fn batches_ingested(&self) -> u64 {
        self.batches
    }

    /// Events ingested so far (including redundant ones).
    pub fn events_ingested(&self) -> u64 {
        self.events_seen
    }

    /// Overlay compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Rows currently diverging from the frozen base.
    pub fn dirty_rows(&self) -> usize {
        self.edits.dirty_rows()
    }

    /// The frozen base substrate (for snapshotting).
    pub(crate) fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// The overlay edit state (for snapshotting).
    pub(crate) fn edits(&self) -> &OverlayEdits {
        &self.edits
    }

    /// Current per-node egonet features.
    pub fn features(&self) -> &EgonetFeatures {
        &self.feats
    }

    /// The current model, or the degeneracy reason of the last refit.
    pub fn params(&self) -> Result<FitParams, &str> {
        self.params.as_ref().copied().map_err(|e| e.as_str())
    }

    /// Materialises the current edge set as a standalone graph (tests
    /// and the full-refit baseline; O(n + m)).
    pub fn to_graph(&self) -> ba_graph::Graph {
        DeltaOverlay::attach(&self.base, self.edits.clone()).to_graph()
    }

    /// Anomaly score of one node under the current model.
    pub fn score(&self, node: NodeId) -> Result<f64, &str> {
        let params = self.params()?;
        Ok(params.score(self.feats.n[node as usize], self.feats.e[node as usize]))
    }

    /// The `k` highest-scoring nodes as `(node, score)`, descending;
    /// ties break toward smaller ids (same deterministic order as
    /// `OddBallModel::top_k`).
    pub fn top_k(&self, k: usize) -> Result<Vec<(NodeId, f64)>, &str> {
        let params = self.params()?;
        Ok(top_k_from(&params, &self.feats, k))
    }

    /// Freezes the current state into an [`EpochSnapshot`]: the overlay
    /// is compacted into a standalone `CsrGraph` and the features and
    /// model are cloned, so the snapshot shares nothing with the live
    /// engine and stays valid across any number of future batches.
    pub fn epoch_snapshot(&self) -> EpochSnapshot {
        let graph = if self.edits.is_clean() {
            self.base.clone()
        } else {
            DeltaOverlay::attach(&self.base, self.edits.clone()).compact()
        };
        EpochSnapshot {
            epoch: self.batches,
            graph,
            feats: self.feats.clone(),
            params: self.params.clone(),
        }
    }

    /// Ingests one batch of events and refits the model at the batch
    /// boundary. Events referencing out-of-range nodes or self-loops
    /// are counted but otherwise ignored.
    pub fn ingest_batch(&mut self, events: &[StreamEvent]) -> BatchSummary {
        let n = self.base.num_nodes() as NodeId;
        self.batches += 1;
        self.events_seen += events.len() as u64;

        let edits = std::mem::take(&mut self.edits);
        let mut view = DeltaOverlay::attach(&self.base, edits);

        // 1. Net the batch: the last event per edge decides its final
        // presence; an op is emitted only when that differs from the
        // current state. BTreeMap keys make the op order canonical.
        let mut finals: BTreeMap<(NodeId, NodeId), bool> = BTreeMap::new();
        for ev in events {
            if ev.u == ev.v || ev.u >= n || ev.v >= n {
                continue;
            }
            let key = (ev.u.min(ev.v), ev.u.max(ev.v));
            finals.insert(key, ev.insert);
        }
        let net_ops: Vec<EdgeOp> = finals
            .iter()
            .filter(|&(&(u, v), &present)| view.has_edge(u, v) != present)
            .map(|(&(u, v), &present)| EdgeOp::new(u, v, present))
            .collect();

        // 2./3. Common neighbours in the old graph, sharded row apply,
        // common neighbours in the new graph: together the superset of
        // nodes whose (N, E) can have moved.
        let mut dirty: Vec<NodeId> = Vec::with_capacity(4 * net_ops.len());
        for op in &net_ops {
            dirty.push(op.u);
            dirty.push(op.v);
            merge_common(
                view.neighbors_sorted(op.u),
                view.neighbors_sorted(op.v),
                |m| dirty.push(m),
            );
        }
        view.apply_ops_sharded(&net_ops, self.cfg.shards);
        for op in &net_ops {
            merge_common(
                view.neighbors_sorted(op.u),
                view.neighbors_sorted(op.v),
                |m| dirty.push(m),
            );
        }
        dirty.sort_unstable();
        dirty.dedup();

        // 4. Recompute (N, E) for the dirty rows on the new graph —
        // read-only and independent per row, so sharded chunks of the
        // sorted dirty list slot results deterministically.
        let updates = recompute_features(&view, &dirty, self.cfg.shards);

        // 5. Serial merge in ascending node order, then refit.
        let mut moved = 0usize;
        for &(i, n_i, e_i) in &updates {
            let idx = i as usize;
            if self.feats.n[idx] != n_i || self.feats.e[idx] != e_i {
                moved += 1;
            }
            self.feats.n[idx] = n_i;
            self.feats.e[idx] = e_i;
            self.fit.update_row(idx, n_i, e_i);
        }
        self.params = self.fit.refit().map_err(|e| e.to_string());

        // Compaction: fold the overlay into a fresh frozen base once
        // enough rows have diverged. Invisible to scores and adjacency.
        let edges = view.num_edges();
        let threshold = (self.cfg.compact_fraction * self.base.num_nodes() as f64).ceil() as usize;
        let compacted = view.dirty_rows() > threshold.max(1);
        if compacted {
            let fresh = view.compact();
            drop(view);
            self.base = fresh;
            self.edits = OverlayEdits::default();
            self.compactions += 1;
        } else {
            self.edits = view.detach();
        }

        BatchSummary {
            batch: self.batches,
            events: events.len(),
            applied: net_ops.len(),
            dirty_rows: moved,
            edges,
            compacted,
            params: self.params.clone(),
        }
    }
}

/// The `k` highest scores under `params` over `feats`, descending, ties
/// toward smaller ids — the one ranking order every serving surface
/// (engine, epoch snapshot, detector) agrees on.
fn top_k_from(params: &FitParams, feats: &EgonetFeatures, k: usize) -> Vec<(NodeId, f64)> {
    let scores: Vec<f64> = (0..feats.len())
        .map(|i| params.score(feats.n[i], feats.e[i]))
        .collect();
    let mut idx: Vec<NodeId> = (0..scores.len() as NodeId).collect();
    idx.sort_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    idx.into_iter()
        .take(k)
        .map(|i| (i, scores[i as usize]))
        .collect()
}

/// `(node, N, E)` for every node in the sorted `dirty` list, recomputed
/// on `view` by chunk-sharded read-only scans.
fn recompute_features(
    view: &DeltaOverlay<'_>,
    dirty: &[NodeId],
    shards: usize,
) -> Vec<(NodeId, f64, f64)> {
    let shards = if shards == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        shards
    };
    let row = |&u: &NodeId| {
        let deg = view.degree(u) as f64;
        (u, deg, deg + view.triangles_at(u) as f64)
    };
    if shards <= 1 || dirty.len() < 2 {
        return dirty.iter().map(row).collect();
    }
    let chunk = dirty.len().div_ceil(shards);
    std::thread::scope(|scope| {
        let handles: Vec<_> = dirty
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(row).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            // ba-lint: allow(panic-path) -- a join Err means the shard worker panicked; re-raising preserves the original panic
            .flat_map(|h| h.join().expect("feature shard"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::synthetic_stream;
    use ba_graph::generators;
    use ba_oddball::OddBall;

    #[test]
    fn from_csr_matches_new_bitwise() {
        let g = generators::barabasi_albert(200, 3, 31);
        let cfg = StreamConfig::default();
        let mut a = StreamEngine::new(&g, cfg);
        let mut b = StreamEngine::from_csr(CsrGraph::from_view(&g), cfg);
        assert_eq!(a.epoch_snapshot(), b.epoch_snapshot());
        // And they stay locked together under ingest.
        let events = synthetic_stream(&g, 120, 5);
        for batch in events.chunks(40) {
            assert_eq!(a.ingest_batch(batch), b.ingest_batch(batch));
        }
        assert_eq!(a.epoch_snapshot(), b.epoch_snapshot());
    }

    fn engine_over_er(shards: usize, compact_fraction: f64) -> (ba_graph::Graph, StreamEngine) {
        let g = generators::erdos_renyi(150, 0.04, 7);
        let cfg = StreamConfig {
            shards,
            compact_fraction,
            regressor: Regressor::Ols,
        };
        let engine = StreamEngine::new(&g, cfg);
        (g, engine)
    }

    /// After every batch the engine state equals a from-scratch fit on
    /// the materialised graph — features, parameters, and scores.
    #[test]
    fn engine_matches_full_refit_every_batch() {
        let (g, mut engine) = engine_over_er(1, 0.25);
        let events = synthetic_stream(&g, 300, 5);
        let mut baseline = g.clone();
        for batch in events.chunks(30) {
            let summary = engine.ingest_batch(batch);
            for ev in batch {
                if ev.insert {
                    baseline.add_edge(ev.u, ev.v);
                } else {
                    baseline.remove_edge(ev.u, ev.v);
                }
            }
            assert_eq!(engine.to_graph(), baseline);
            assert_eq!(summary.edges, baseline.num_edges());
            assert_eq!(engine.features(), &egonet_features(&baseline));
            let model = OddBall::default().fit(&baseline).expect("baseline fit");
            let params = summary.params.expect("engine fit");
            assert_eq!(params.beta0.to_bits(), model.beta0().to_bits());
            assert_eq!(params.beta1.to_bits(), model.beta1().to_bits());
            // Point scores and ranking agree bit-for-bit.
            for i in 0..10u32 {
                assert_eq!(engine.score(i).unwrap().to_bits(), model.score(i).to_bits());
            }
            let top: Vec<(NodeId, u64)> = engine
                .top_k(10)
                .unwrap()
                .into_iter()
                .map(|(i, s)| (i, s.to_bits()))
                .collect();
            let model_top: Vec<(NodeId, u64)> = model
                .top_k(10)
                .into_iter()
                .map(|(i, s)| (i, s.to_bits()))
                .collect();
            assert_eq!(top, model_top);
        }
    }

    /// Shard count never changes the summaries (the determinism
    /// contract the CI job diffs end to end through the CLI).
    #[test]
    fn summaries_identical_across_shard_counts() {
        let reference: Vec<BatchSummary> = {
            let (g, mut engine) = engine_over_er(1, 0.1);
            let events = synthetic_stream(&g, 240, 9);
            events.chunks(24).map(|b| engine.ingest_batch(b)).collect()
        };
        for shards in [2usize, 4, 8] {
            let (g, mut engine) = engine_over_er(shards, 0.1);
            let events = synthetic_stream(&g, 240, 9);
            let summaries: Vec<BatchSummary> =
                events.chunks(24).map(|b| engine.ingest_batch(b)).collect();
            assert_eq!(summaries, reference, "shards = {shards}");
        }
    }

    /// In-batch churn nets out: insert→delete of the same edge within a
    /// batch applies nothing.
    #[test]
    fn redundant_events_net_to_nothing() {
        let (_, mut engine) = engine_over_er(1, 0.25);
        let edges_before = engine.num_edges();
        let summary = engine.ingest_batch(&[
            StreamEvent::new(0, 0, 149, true),
            StreamEvent::new(1, 0, 149, false),
            StreamEvent::new(2, 2, 2, true),    // self-loop: ignored
            StreamEvent::new(3, 0, 5000, true), // out of range: ignored
        ]);
        assert_eq!(summary.applied, 0);
        assert_eq!(summary.dirty_rows, 0);
        assert_eq!(summary.events, 4);
        assert_eq!(engine.num_edges(), edges_before);
    }

    /// An aggressive compaction threshold folds the overlay every few
    /// batches without perturbing anything observable.
    #[test]
    fn compaction_is_invisible_to_scores() {
        let events = {
            let g = generators::erdos_renyi(150, 0.04, 7);
            synthetic_stream(&g, 300, 13)
        };
        let (_, mut eager) = engine_over_er(1, 0.0); // compact whenever dirty > 1
        let (_, mut lazy) = engine_over_er(1, 1.0); // never compact
        for batch in events.chunks(25) {
            let a = eager.ingest_batch(batch);
            let b = lazy.ingest_batch(batch);
            // Summaries agree except for the compaction flag itself.
            assert_eq!(a.applied, b.applied);
            assert_eq!(a.dirty_rows, b.dirty_rows);
            assert_eq!(a.edges, b.edges);
            assert_eq!(a.params, b.params);
            assert_eq!(eager.top_k(15).unwrap(), lazy.top_k(15).unwrap());
        }
        assert!(eager.compactions() > 0);
        assert_eq!(lazy.compactions(), 0);
        assert_eq!(eager.to_graph(), lazy.to_graph());
    }

    /// An epoch snapshot is a frozen copy: it matches the engine at the
    /// moment of freezing bit-for-bit and is immune to later batches.
    #[test]
    fn epoch_snapshot_is_frozen_and_bit_identical() {
        let (g, mut engine) = engine_over_er(1, 0.1);
        let events = synthetic_stream(&g, 200, 21);
        let mut batches = events.chunks(40);
        engine.ingest_batch(batches.next().unwrap());
        let snap = engine.epoch_snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.num_nodes(), engine.num_nodes());
        assert_eq!(snap.num_edges(), engine.num_edges());
        // Compaction in the snapshot equals a from-scratch rebuild.
        assert_eq!(snap.graph, CsrGraph::from_view(&engine.to_graph()));
        let frozen_top: Vec<(NodeId, u64)> = snap
            .top_k(10)
            .unwrap()
            .iter()
            .map(|&(i, s)| (i, s.to_bits()))
            .collect();
        let live_top: Vec<(NodeId, u64)> = engine
            .top_k(10)
            .unwrap()
            .iter()
            .map(|&(i, s)| (i, s.to_bits()))
            .collect();
        assert_eq!(frozen_top, live_top);
        assert_eq!(
            snap.score(3).unwrap().to_bits(),
            engine.score(3).unwrap().to_bits()
        );
        // Later ingest moves the engine but not the snapshot.
        for batch in batches {
            engine.ingest_batch(batch);
        }
        let after: Vec<(NodeId, u64)> = snap
            .top_k(10)
            .unwrap()
            .iter()
            .map(|&(i, s)| (i, s.to_bits()))
            .collect();
        assert_eq!(after, frozen_top);
        assert_eq!(engine.epoch_snapshot().epoch, engine.batches_ingested());
    }

    /// Degenerate graphs surface as an error value, not a panic.
    #[test]
    fn degenerate_refit_is_reported_not_panicked() {
        // A cycle is degree-regular: the log-log regression is singular.
        let n = 20u32;
        let edges: Vec<(NodeId, NodeId)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = ba_graph::Graph::from_edges(n as usize, edges);
        let engine = StreamEngine::new(&g, StreamConfig::default());
        assert!(engine.params().is_err());
        assert!(engine.score(0).is_err());
        assert!(engine.top_k(3).is_err());
    }
}
