//! Property-based pins for the streaming engine's two core contracts:
//!
//! 1. **Compaction ≡ rebuild** — an engine that compacts aggressively
//!    and one that never compacts produce bit-identical scores, and the
//!    compacted base equals a CSR rebuilt from the current edge set
//!    from scratch;
//! 2. **Snapshot → restore → continue ≡ uninterrupted** — cutting the
//!    stream at any batch boundary and resuming from the snapshot
//!    yields byte-identical summaries and scores for the rest of the
//!    stream.

use ba_graph::{CsrGraph, DeltaOverlay, EditableGraph, Graph, GraphView, NodeId};
use ba_stream::{BatchSummary, StreamConfig, StreamEngine, StreamEvent};
use proptest::prelude::*;

/// Strategy: a connected-ish random simple graph on `6..=max_n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (6..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId), n..n * 3).prop_map(
            move |pairs| {
                let mut g = Graph::from_edges(n, pairs);
                // Anchor a path so the regression never sees an empty
                // or all-isolated graph.
                for i in 0..n as NodeId - 1 {
                    g.add_edge(i, i + 1);
                }
                g
            },
        )
    })
}

/// Strategy: a batched event stream over node ids `0..n` (events may be
/// redundant or self-loops — the engine nets them out).
fn arb_batches(n: usize, max_batches: usize) -> impl Strategy<Value = Vec<Vec<StreamEvent>>> {
    proptest::collection::vec(
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId, 0..2u32), 1..12),
        1..=max_batches,
    )
    .prop_map(|batches| {
        let mut t = 0u64;
        batches
            .into_iter()
            .map(|batch| {
                batch
                    .into_iter()
                    .map(|(u, v, insert)| {
                        t += 1;
                        StreamEvent::new(t, u, v, insert == 1)
                    })
                    .collect()
            })
            .collect()
    })
}

fn scores_bits(engine: &StreamEngine) -> Option<Vec<(NodeId, u64)>> {
    engine
        .top_k(engine.num_nodes())
        .ok()
        .map(|top| top.into_iter().map(|(i, s)| (i, s.to_bits())).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 1: compaction timing is unobservable, and the compacted
    /// base is byte-identical to a from-scratch rebuild of the current
    /// edge set.
    #[test]
    fn compaction_equals_rebuild_from_scratch(
        g in arb_graph(24),
        batches in arb_batches(24, 6),
    ) {
        let cfg = |frac: f64| StreamConfig { shards: 1, compact_fraction: frac, ..StreamConfig::default() };
        let mut eager = StreamEngine::new(&g, cfg(0.0)); // compact almost every batch
        let mut lazy = StreamEngine::new(&g, cfg(1.0));  // never compact
        for batch in &batches {
            let a = eager.ingest_batch(batch);
            let b = lazy.ingest_batch(batch);
            prop_assert_eq!(a.applied, b.applied);
            prop_assert_eq!(a.edges, b.edges);
            prop_assert_eq!(&a.params, &b.params);
            prop_assert_eq!(scores_bits(&eager), scores_bits(&lazy));
            // Adjacency is identical row for row...
            let (ge, gl) = (eager.to_graph(), lazy.to_graph());
            prop_assert_eq!(&ge, &gl);
            // ...and compacting the lazy engine's overlay now yields the
            // same bytes as freezing the edge set from scratch.
            let csr_lazy = CsrGraph::from_view(&gl);
            let mut check = Graph::new(ge.num_nodes());
            ge.for_each_edge(|u, v| { check.add_edge(u, v); });
            prop_assert_eq!(CsrGraph::from_view(&check), csr_lazy);
        }
    }

    /// Contract 1b (substrate level): `DeltaOverlay::compact` equals
    /// `CsrGraph::from_view` of the same overlay for arbitrary toggle
    /// histories.
    #[test]
    fn overlay_compact_matches_from_view(
        g in arb_graph(20),
        toggles in proptest::collection::vec((0u32..20, 0u32..20), 1..40),
    ) {
        let csr = CsrGraph::from(&g);
        let mut ov = DeltaOverlay::new(&csr);
        let n = ov.num_nodes() as NodeId;
        for (u, v) in toggles {
            ov.toggle_edge(u % n, v % n);
        }
        prop_assert_eq!(ov.compact(), CsrGraph::from_view(&ov));
    }

    /// Contract 2: killing the stream at any batch boundary and
    /// restoring from the snapshot continues byte-identically — batch
    /// summaries, scores, graph, and even future compaction timing.
    #[test]
    fn snapshot_restore_continue_equals_uninterrupted(
        g in arb_graph(24),
        batches in arb_batches(24, 6),
        cut_sel in 0usize..100,
        shards in 1usize..4,
    ) {
        let cfg = StreamConfig { shards, compact_fraction: 0.2, ..StreamConfig::default() };
        let cut = cut_sel % batches.len();
        let path = std::env::temp_dir().join(format!(
            "ba_stream_proptest_{}_{cut}_{shards}.snapshot",
            std::process::id()
        ));

        // Uninterrupted reference run.
        let mut reference = StreamEngine::new(&g, cfg);
        let mut ref_summaries: Vec<BatchSummary> = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            ref_summaries.push(reference.ingest_batch(batch));
            if i == cut {
                // Also snapshot the reference at the cut so the restore
                // below resumes from a mid-stream state.
                reference.save_snapshot(&path).expect("save snapshot");
            }
        }

        // Killed-and-restored run over the remaining batches.
        let mut resumed = StreamEngine::restore_snapshot(&path, shards).expect("restore");
        prop_assert_eq!(resumed.batches_ingested() as usize, cut + 1);
        let mut resumed_summaries: Vec<BatchSummary> = Vec::new();
        for batch in &batches[cut + 1..] {
            resumed_summaries.push(resumed.ingest_batch(batch));
        }
        prop_assert_eq!(&resumed_summaries[..], &ref_summaries[cut + 1..]);
        prop_assert_eq!(scores_bits(&resumed), scores_bits(&reference));
        prop_assert_eq!(resumed.to_graph(), reference.to_graph());
        prop_assert_eq!(resumed.compactions(), reference.compactions());
        let _ = std::fs::remove_file(&path);
    }

    /// Shard invariance at the engine level for arbitrary streams (the
    /// CLI-level byte-diff is covered by `tests/determinism.rs` and CI).
    #[test]
    fn shard_count_never_changes_summaries(
        g in arb_graph(24),
        batches in arb_batches(24, 4),
    ) {
        let run = |shards: usize| -> (Vec<BatchSummary>, Option<Vec<(NodeId, u64)>>) {
            let cfg = StreamConfig { shards, compact_fraction: 0.2, ..StreamConfig::default() };
            let mut engine = StreamEngine::new(&g, cfg);
            let summaries = batches.iter().map(|b| engine.ingest_batch(b)).collect();
            (summaries, scores_bits(&engine))
        };
        let reference = run(1);
        for shards in [2usize, 5] {
            prop_assert_eq!(&run(shards), &reference, "shards = {}", shards);
        }
    }
}
