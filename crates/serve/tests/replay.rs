//! Replay determinism: the serving layer's contract that responses are
//! pure functions of (request, pinned epoch).
//!
//! 1. **Epoch ≡ prefix** (proptest) — epoch-`N` responses from a
//!    long-lived server state are bit-identical to those of a
//!    from-scratch engine fed the same `N`-batch prefix;
//! 2. **Client-count invariance** (TCP) — replaying a request log at 1
//!    and 4 concurrent clients produces byte-identical transcripts.

use ba_graph::{Graph, NodeId};
use ba_serve::{
    encode_response, format_request, render_response, replay, synthetic_requests, Request,
    ServeConfig, ServeState, Server, WorkloadConfig,
};
use ba_stream::{StreamConfig, StreamEngine, StreamEvent};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (6..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId), n..n * 3).prop_map(
            move |pairs| {
                let mut g = Graph::from_edges(n, pairs);
                for i in 0..n as NodeId - 1 {
                    g.add_edge(i, i + 1);
                }
                g
            },
        )
    })
}

fn arb_batches(n: usize, max_batches: usize) -> impl Strategy<Value = Vec<Vec<StreamEvent>>> {
    proptest::collection::vec(
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId, 0..2u32), 1..12),
        1..=max_batches,
    )
    .prop_map(|batches| {
        let mut t = 0u64;
        batches
            .into_iter()
            .map(|batch| {
                batch
                    .into_iter()
                    .map(|(u, v, insert)| {
                        t += 1;
                        StreamEvent::new(t, u, v, insert == 1)
                    })
                    .collect()
            })
            .collect()
    })
}

/// The query set compared per epoch: top-k plus a point score per node.
fn epoch_probe(n: usize, epoch: u64) -> Vec<Request> {
    let mut probes = vec![Request::TopK { epoch, k: 8 }];
    probes.extend((0..n as NodeId).map(|node| Request::PointScore { epoch, node }));
    probes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Epoch-`N` responses from a state that lived through the whole
    /// stream are bit-identical to a from-scratch engine fed only the
    /// first `N` batches. Error responses (degenerate fits) must agree
    /// too — determinism covers the unhappy path.
    #[test]
    fn epoch_n_matches_from_scratch_prefix_engine(
        g in arb_graph(20),
        batches in arb_batches(20, 5),
    ) {
        let n = g.num_nodes();
        let cfg = StreamConfig { shards: 1, ..StreamConfig::default() };
        let lived = ServeState::new(StreamEngine::new(&g, cfg), usize::MAX);
        for batch in &batches {
            lived.ingest(batch);
        }
        for prefix in 0..=batches.len() {
            let mut fresh_engine = StreamEngine::new(&g, cfg);
            for batch in &batches[..prefix] {
                fresh_engine.ingest_batch(batch);
            }
            // The fresh state's only epoch is `prefix` — pinning it on
            // both sides compares frozen snapshots directly.
            let fresh = ServeState::new(fresh_engine, 1);
            for req in epoch_probe(n, prefix as u64) {
                prop_assert_eq!(
                    encode_response(&lived.handle(&req)),
                    encode_response(&fresh.handle(&req)),
                    "epoch {} diverged from its prefix engine", prefix
                );
            }
        }
    }
}

/// Replaying the same request log at 1 and 4 concurrent clients over
/// real TCP yields byte-identical transcripts (the in-CI step diffs
/// 1 vs 8; this is the in-tree pin of the same contract).
#[test]
fn replay_transcript_is_identical_at_1_and_4_clients() {
    let g = ba_graph::generators::erdos_renyi(150, 0.04, 17);
    let requests = synthetic_requests(
        &g,
        &WorkloadConfig {
            batches: 4,
            batch_size: 30,
            queries_per_batch: 24,
            top_k: 6,
            seed: 21,
        },
    );

    let transcript_with = |clients: usize| -> String {
        // A fresh server per replay: ingest requests mutate state, so
        // determinism is defined from a cold start — same as CI.
        let engine = StreamEngine::new(&g, StreamConfig::default());
        let server =
            Server::start("127.0.0.1:0", engine, ServeConfig::default()).expect("bind server");
        let responses =
            replay(&server.local_addr().to_string(), &requests, clients).expect("replay");
        server.shutdown();
        let mut out = String::new();
        for (req, resp) in requests.iter().zip(&responses) {
            out.push_str(&format_request(req));
            out.push_str(" => ");
            out.push_str(&render_response(resp));
            out.push('\n');
        }
        out
    };

    let solo = transcript_with(1);
    let fanned = transcript_with(4);
    assert!(
        solo.contains("ingested epoch="),
        "transcript looks empty:\n{solo}"
    );
    assert_eq!(solo, fanned, "transcripts diverged between 1 and 4 clients");
}
