//! Protocol edge cases through a real TCP server: severed connections,
//! rejected frames, unknown tags, and epoch consistency under
//! concurrent publishes.

use ba_graph::generators;
use ba_serve::{
    encode_response, read_frame, write_frame, Connection, Request, Response, ServeConfig, Server,
    LATEST,
};
use ba_stream::{synthetic_stream, StreamConfig, StreamEngine};
use std::io::Write;
use std::net::TcpStream;

fn test_server(retain: usize) -> (ba_graph::Graph, Server) {
    let g = generators::erdos_renyi(120, 0.05, 7);
    let engine = StreamEngine::new(&g, StreamConfig::default());
    let server = Server::start("127.0.0.1:0", engine, ServeConfig { retain }).expect("bind");
    (g, server)
}

/// A client that dies mid-frame must not disturb the server: later
/// connections get correct answers.
#[test]
fn severed_connection_mid_frame_is_isolated() {
    let (_, server) = test_server(8);
    let addr = server.local_addr().to_string();

    // Sever inside the header.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(&[1, 2, 3]).unwrap();
    drop(raw);

    // Sever inside the payload: declare 100 bytes, send 4, die.
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(&100u64.to_le_bytes()).unwrap();
    raw.write_all(&[9, 9, 9, 9]).unwrap();
    drop(raw);

    // The server still answers a well-formed client.
    let mut conn = Connection::connect(&addr).unwrap();
    let resp = conn
        .call(&Request::PointScore {
            epoch: LATEST,
            node: 0,
        })
        .unwrap();
    assert!(matches!(
        resp,
        Response::Score {
            epoch: 0,
            node: 0,
            ..
        }
    ));
    server.shutdown();
}

/// An oversized frame header draws one error response, then the
/// connection closes (no resync after a rejected header).
#[test]
fn oversized_frame_is_rejected_then_closed() {
    let (_, server) = test_server(8);
    let addr = server.local_addr().to_string();
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(&u64::MAX.to_le_bytes()).unwrap();
    raw.flush().unwrap();
    let payload = read_frame(&mut raw).unwrap().expect("error response");
    let resp = ba_serve::decode_response(&payload).unwrap();
    match resp {
        Response::Error { code, message } => {
            assert_eq!(code, ba_serve::protocol::ERR_MALFORMED);
            assert!(message.contains("oversized"), "{message}");
        }
        other => panic!("expected error, got {other:?}"),
    }
    // Connection is closed afterwards: clean EOF.
    assert!(read_frame(&mut raw).unwrap().is_none());
    server.shutdown();
}

/// A zero-length frame is rejected the same way.
#[test]
fn zero_length_frame_is_rejected_then_closed() {
    let (_, server) = test_server(8);
    let addr = server.local_addr().to_string();
    let mut raw = TcpStream::connect(&addr).unwrap();
    raw.write_all(&0u64.to_le_bytes()).unwrap();
    raw.flush().unwrap();
    let payload = read_frame(&mut raw).unwrap().expect("error response");
    match ba_serve::decode_response(&payload).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ba_serve::protocol::ERR_MALFORMED);
            assert!(message.contains("zero-length"), "{message}");
        }
        other => panic!("expected error, got {other:?}"),
    }
    assert!(read_frame(&mut raw).unwrap().is_none());
    server.shutdown();
}

/// An unknown request tag draws a deterministic error response and the
/// connection stays usable (the frame was fully consumed).
#[test]
fn unknown_tag_gets_error_response_and_connection_survives() {
    let (_, server) = test_server(8);
    let addr = server.local_addr().to_string();
    let mut raw = TcpStream::connect(&addr).unwrap();
    write_frame(&mut raw, &[250u8, 1, 2, 3]).unwrap();
    let payload = read_frame(&mut raw).unwrap().expect("error response");
    match ba_serve::decode_response(&payload).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ba_serve::protocol::ERR_UNKNOWN_TAG);
            assert_eq!(message, "unknown request tag 250");
        }
        other => panic!("expected error, got {other:?}"),
    }
    // Same socket, a real request now works.
    write_frame(&mut raw, &ba_serve::encode_request(&Request::EpochInfo)).unwrap();
    let payload = read_frame(&mut raw).unwrap().expect("epoch-info response");
    assert!(matches!(
        ba_serve::decode_response(&payload).unwrap(),
        Response::EpochInfo { epoch: 0, .. }
    ));
    server.shutdown();
}

/// Readers hammering `latest` while ingest publishes epochs only ever
/// see whole epochs: re-querying any observed epoch *pinned* later
/// returns byte-identical entries — a torn read (mixing epoch N's model
/// with epoch N+1's features) could not satisfy that.
#[test]
fn concurrent_readers_see_consistent_epochs_during_publish() {
    let (g, server) = test_server(64);
    let addr = server.local_addr().to_string();
    let events = synthetic_stream(&g, 400, 13);

    let observed: Vec<(u64, Vec<u8>)> = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut conn = Connection::connect(&addr).unwrap();
                    let mut seen = Vec::new();
                    for _ in 0..60 {
                        let resp = conn
                            .call(&Request::TopK {
                                epoch: LATEST,
                                k: 8,
                            })
                            .unwrap();
                        let Response::TopK { epoch, .. } = &resp else {
                            panic!("expected topk, got {resp:?}");
                        };
                        seen.push((*epoch, encode_response(&resp)));
                    }
                    seen
                })
            })
            .collect();
        // Ingest concurrently on a separate connection.
        let mut ingest = Connection::connect(&addr).unwrap();
        for batch in events.chunks(40) {
            let resp = ingest
                .call(&Request::IngestBatch {
                    events: batch.to_vec(),
                })
                .unwrap();
            assert!(matches!(resp, Response::Ingested { .. }));
        }
        readers
            .into_iter()
            .flat_map(|h| h.join().expect("reader thread"))
            .collect()
    });

    // Every observed (epoch, bytes) must match a pinned re-query.
    let mut conn = Connection::connect(&addr).unwrap();
    let mut distinct: Vec<(u64, Vec<u8>)> = observed;
    distinct.sort();
    distinct.dedup();
    assert!(!distinct.is_empty());
    for (epoch, bytes) in distinct {
        let pinned = conn.call(&Request::TopK { epoch, k: 8 }).unwrap();
        assert_eq!(
            encode_response(&pinned),
            bytes,
            "epoch {epoch} served inconsistent top-k under concurrent publish"
        );
    }
    server.shutdown();
}
