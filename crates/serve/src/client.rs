//! Client connections and the deterministic replay harness.
//!
//! [`Connection`] is one framed request/response channel.
//! [`replay`] drives a whole request log against a server with `N`
//! concurrent connections and produces responses **in log order**,
//! byte-identical at any `N`:
//!
//! * ingest-batch requests are *barriers*: they are issued serially on
//!   connection 0, in log order, so the server walks the same epoch
//!   sequence regardless of client count;
//! * the queries between two barriers are distributed round-robin over
//!   all connections and issued concurrently — safe because each one
//!   pins an epoch (or hits `latest` while no ingest is in flight), so
//!   its response is a pure function of the request;
//! * responses are slotted back by request index, so the transcript
//!   order never depends on arrival order.
//!
//! This is exactly the shape the CI serve-replay step byte-diffs at 1
//! and 8 clients.

use crate::frame::{read_frame, write_frame, FrameError};
use crate::protocol::{decode_response, encode_request, Request, Response, WireError};
use std::io::{self, BufReader, BufWriter};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Errors raised on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Framing failure (severed, oversized, …).
    Frame(FrameError),
    /// The response payload could not be decoded.
    Wire(WireError),
    /// The server closed the connection instead of responding.
    ServerClosed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Wire(e) => write!(f, "bad response: {e}"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// One framed connection to a server.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    /// Connects once.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Connects with retries until `timeout` elapses — the client's
    /// readiness handshake against a server that is still binding
    /// (the CI replay step starts the server as a background process).
    pub fn connect_retry(addr: &str, timeout: Duration) -> io::Result<Self> {
        let deadline = Instant::now() + timeout;
        loop {
            match Self::connect(addr) {
                Ok(conn) => return Ok(conn),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    /// Sends one request and reads its response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &encode_request(req))?;
        match read_frame(&mut self.reader)? {
            Some(payload) => Ok(decode_response(&payload)?),
            None => Err(ClientError::ServerClosed),
        }
    }
}

/// Replays `requests` against `addr` over `clients` concurrent
/// connections; returns the responses in request order. See the module
/// docs for the determinism contract.
pub fn replay(
    addr: &str,
    requests: &[Request],
    clients: usize,
) -> Result<Vec<Response>, ClientError> {
    let clients = clients.max(1);
    let mut conns = Vec::with_capacity(clients);
    for _ in 0..clients {
        conns.push(Connection::connect_retry(addr, Duration::from_secs(10))?);
    }
    let mut responses: Vec<Option<Response>> = (0..requests.len()).map(|_| None).collect();

    let mut seg_start = 0usize;
    for barrier in 0..=requests.len() {
        let is_barrier =
            barrier == requests.len() || matches!(requests[barrier], Request::IngestBatch { .. });
        if !is_barrier {
            continue;
        }
        // Fan the segment's queries out round-robin and slot results
        // back by index.
        let segment = seg_start..barrier;
        if !segment.is_empty() {
            let results: Vec<Result<Vec<(usize, Response)>, ClientError>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = conns
                        .iter_mut()
                        .enumerate()
                        .map(|(c, conn)| {
                            let assigned: Vec<usize> = segment
                                .clone()
                                .filter(|i| (i - seg_start) % clients == c)
                                .collect();
                            scope.spawn(move || {
                                let mut out = Vec::with_capacity(assigned.len());
                                for i in assigned {
                                    out.push((i, conn.call(&requests[i])?));
                                }
                                Ok(out)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        // ba-lint: allow(panic-path) -- a join Err means the replay worker panicked; re-raising preserves the original panic
                        .map(|h| h.join().expect("replay client thread"))
                        .collect()
                });
            for result in results {
                for (i, resp) in result? {
                    responses[i] = Some(resp);
                }
            }
        }
        // The barrier itself: serial, on connection 0.
        if barrier < requests.len() {
            responses[barrier] = Some(conns[0].call(&requests[barrier])?);
        }
        seg_start = barrier + 1;
    }
    Ok(responses
        .into_iter()
        // ba-lint: allow(panic-path) -- the segment loop above writes every index below each barrier and the barrier itself, covering all slots
        .map(|r| r.expect("every request slot filled"))
        .collect())
}
