//! Served-traffic load benchmark: sustained queries/sec and p99 latency
//! through the real TCP stack.
//!
//! Starts a [`ba_serve::Server`] on an ephemeral loopback port over an
//! Erdős–Rényi graph, then drives `clients` concurrent connections,
//! each issuing a fixed per-connection mix of point-score and top-k
//! queries against the latest epoch while a background ingester
//! publishes fresh epochs — the serving path under load, epoch
//! rotation included. Reports:
//!
//! * **sustained_qps** — total completed queries / wall-clock span of
//!   the client phase;
//! * **p99_latency_us** — 99th-percentile per-request round-trip.
//!
//! Exits non-zero if sustained throughput falls below the floor — the
//! CI gate for the serving path. `--quick` shrinks the workload (CI),
//! `--json PATH` records the result in the unified perf-trend schema
//! (`BENCH_serve.json`).

use ba_bench::report::BenchReport;
use ba_graph::generators;
use ba_serve::{Connection, Request, Response, ServeConfig, Server, LATEST};
use ba_stream::{synthetic_stream, StreamConfig, StreamEngine};
use std::time::Instant;

/// Sustained-qps floor. Deliberately conservative: CI runners are slow
/// shared VMs, and the gate exists to catch order-of-magnitude serving
/// regressions (a stray lock across the read path), not scheduler
/// noise.
const REQUIRED_QPS: f64 = 2_000.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let (clients, requests_per_client, ingest_batches) = if quick {
        (4, 2_000, 10)
    } else {
        (8, 10_000, 40)
    };

    let n = 2000usize;
    let g = generators::erdos_renyi(n, 0.005, 7);
    let m = g.num_edges();
    let engine = StreamEngine::new(&g, StreamConfig::default());
    let server = Server::start("127.0.0.1:0", engine, ServeConfig::default()).expect("bind server");
    let addr = server.local_addr().to_string();
    eprintln!(
        "serving n = {n}, m = {m} on {addr}; {clients} clients x {requests_per_client} requests"
    );

    // Background ingest: publish fresh epochs while queries fly, so the
    // measured path includes epoch rotation, not just a static snapshot.
    let ingest_events = synthetic_stream(&g, ingest_batches * 25, 11);
    let ingest_addr = addr.clone();
    let ingester = std::thread::spawn(move || {
        let mut conn = Connection::connect(&ingest_addr).expect("ingest connect");
        for batch in ingest_events.chunks(25) {
            let resp = conn
                .call(&Request::IngestBatch {
                    events: batch.to_vec(),
                })
                .expect("ingest call");
            assert!(matches!(resp, Response::Ingested { .. }), "{resp:?}");
        }
    });

    // Client fleet: each connection issues its requests back to back;
    // per-request latencies are collected for the percentiles.
    let t0 = Instant::now();
    let latencies: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut conn = Connection::connect(&addr).expect("client connect");
                    let mut lat = Vec::with_capacity(requests_per_client);
                    for i in 0..requests_per_client {
                        let req = if i % 20 == 19 {
                            Request::TopK {
                                epoch: LATEST,
                                k: 10,
                            }
                        } else {
                            Request::PointScore {
                                epoch: LATEST,
                                node: ((i * 7919 + c * 104729) % n) as u32,
                            }
                        };
                        let q0 = Instant::now();
                        let resp = conn.call(&req).expect("query call");
                        lat.push(q0.elapsed().as_secs_f64() * 1e6);
                        assert!(
                            matches!(resp, Response::Score { .. } | Response::TopK { .. }),
                            "unexpected response: {resp:?}"
                        );
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let span_s = t0.elapsed().as_secs_f64();
    ingester.join().expect("ingester thread");
    server.shutdown();

    let mut all: Vec<f64> = latencies.into_iter().flatten().collect();
    all.sort_by(f64::total_cmp);
    let total = all.len();
    let qps = total as f64 / span_s;
    let p50 = all[total / 2];
    let p99 = all[(total * 99 / 100).min(total - 1)];

    println!("requests:       {total} over {span_s:.3}s ({clients} clients)");
    println!("sustained qps:  {qps:>10.0} (gate: ≥{REQUIRED_QPS})");
    println!("latency p50:    {p50:>10.1} us");
    println!("latency p99:    {p99:>10.1} us");

    BenchReport::new("serve")
        .metric("n", n as f64, "count")
        .metric("m", m as f64, "count")
        .metric("clients", clients as f64, "count")
        .metric("requests", total as f64, "count")
        .metric("ingest_batches", ingest_batches as f64, "count")
        .metric("span_s", span_s, "s")
        .metric("sustained_qps", qps, "qps")
        .metric("p50_latency_us", p50, "us")
        .metric("p99_latency_us", p99, "us")
        .write_if_requested(&args)
        .expect("write bench json");

    if qps < REQUIRED_QPS {
        eprintln!("FAIL: sustained throughput {qps:.0} qps is below the {REQUIRED_QPS} qps floor");
        std::process::exit(1);
    }
}
