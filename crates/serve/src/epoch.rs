//! Epoch rotation: frozen snapshots published behind swapped `Arc`s.
//!
//! The serving layer's core invariant is that **reads never block
//! ingest** (and ingest never tears a read): every query is answered
//! from an [`EpochSnapshot`] — a fully
//! compacted `CsrGraph` + features + fitted model frozen at one batch
//! boundary — while ingest mutates only the private `StreamEngine`
//! behind its own lock and *publishes* the next epoch as a new `Arc`
//! when the batch completes. A reader pins an epoch by cloning its
//! `Arc` under a briefly-held read lock; from then on its entire
//! response is computed against immutable data, so a publish happening
//! concurrently can never produce a response that mixes two epochs.
//!
//! [`EpochStore`] retains the most recent `retain` epochs so *pinned*
//! queries (epoch-numbered, as the replay harness issues) can be
//! answered as long as the pin is within the window; older epochs are
//! evicted and report [`ERR_UNKNOWN_EPOCH`]
//! deterministically.

use crate::protocol::{
    Request, Response, ERR_DEGENERATE, ERR_NODE_RANGE, ERR_UNKNOWN_EPOCH, LATEST,
};
use ba_stream::{EpochSnapshot, StreamEngine, StreamEvent};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};

/// The retained epoch window.
#[derive(Debug)]
pub struct EpochStore {
    retain: usize,
    epochs: BTreeMap<u64, Arc<EpochSnapshot>>,
}

impl EpochStore {
    /// Builds a store seeded with one initial epoch; at least one epoch
    /// is always retained.
    pub fn new(retain: usize, initial: EpochSnapshot) -> Self {
        let mut epochs = BTreeMap::new();
        epochs.insert(initial.epoch, Arc::new(initial));
        Self {
            retain: retain.max(1),
            epochs,
        }
    }

    /// Publishes a new epoch and evicts beyond the retention window.
    pub fn publish(&mut self, snap: EpochSnapshot) {
        self.epochs.insert(snap.epoch, Arc::new(snap));
        while self.epochs.len() > self.retain {
            self.epochs.pop_first();
        }
    }

    /// The latest epoch (the store is never empty).
    pub fn latest(&self) -> Arc<EpochSnapshot> {
        // ba-lint: allow(panic-path) -- the store is constructed with a seed epoch and eviction keeps at least one, so it is never empty
        Arc::clone(self.epochs.last_key_value().expect("store is non-empty").1)
    }

    /// Pins `epoch` ([`LATEST`] resolves to the newest); `None` if the
    /// epoch was evicted or never published.
    pub fn pin(&self, epoch: u64) -> Option<Arc<EpochSnapshot>> {
        if epoch == LATEST {
            Some(self.latest())
        } else {
            self.epochs.get(&epoch).map(Arc::clone)
        }
    }

    /// Oldest epoch still retained.
    pub fn oldest(&self) -> u64 {
        // ba-lint: allow(panic-path) -- the store is constructed with a seed epoch and eviction keeps at least one, so it is never empty
        *self.epochs.first_key_value().expect("store is non-empty").0
    }

    /// Newest epoch number.
    pub fn latest_epoch(&self) -> u64 {
        // ba-lint: allow(panic-path) -- the store is constructed with a seed epoch and eviction keeps at least one, so it is never empty
        *self.epochs.last_key_value().expect("store is non-empty").0
    }

    /// Number of retained epochs.
    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    /// Always false — the store keeps at least the seed epoch.
    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }
}

/// The shared server state: the mutable engine (ingest side) and the
/// published epoch window (read side).
#[derive(Debug)]
pub struct ServeState {
    engine: Mutex<StreamEngine>,
    epochs: RwLock<EpochStore>,
}

impl ServeState {
    /// Wraps an engine, publishing its current state as the first
    /// visible epoch.
    pub fn new(engine: StreamEngine, retain: usize) -> Self {
        let initial = engine.epoch_snapshot();
        Self {
            engine: Mutex::new(engine),
            epochs: RwLock::new(EpochStore::new(retain, initial)),
        }
    }

    /// Pins an epoch for reading (see [`EpochStore::pin`]).
    pub fn pin(&self, epoch: u64) -> Option<Arc<EpochSnapshot>> {
        self.epochs
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .pin(epoch)
    }

    /// Handles one request. Every arm is a pure function of the request
    /// and the pinned epoch's frozen state (ingest additionally
    /// advances the engine), so responses are replayable byte-for-byte.
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::PointScore { epoch, node } => match self.pin(*epoch) {
                None => unknown_epoch(*epoch),
                Some(snap) => {
                    if *node as usize >= snap.num_nodes() {
                        return Response::error(
                            ERR_NODE_RANGE,
                            format!("node {node} out of range (n = {})", snap.num_nodes()),
                        );
                    }
                    match snap.score(*node) {
                        Ok(score) => Response::Score {
                            epoch: snap.epoch,
                            node: *node,
                            score,
                        },
                        Err(reason) => Response::error(
                            ERR_DEGENERATE,
                            format!("epoch {} model is degenerate: {reason}", snap.epoch),
                        ),
                    }
                }
            },
            Request::TopK { epoch, k } => match self.pin(*epoch) {
                None => unknown_epoch(*epoch),
                Some(snap) => match snap.top_k(*k as usize) {
                    Ok(entries) => Response::TopK {
                        epoch: snap.epoch,
                        entries,
                    },
                    Err(reason) => Response::error(
                        ERR_DEGENERATE,
                        format!("epoch {} model is degenerate: {reason}", snap.epoch),
                    ),
                },
            },
            Request::IngestBatch { events } => self.ingest(events),
            Request::EpochInfo => {
                let store = self.epochs.read().unwrap_or_else(|e| e.into_inner());
                let latest = store.latest();
                Response::EpochInfo {
                    epoch: store.latest_epoch(),
                    oldest: store.oldest(),
                    nodes: latest.num_nodes() as u64,
                    edges: latest.num_edges() as u64,
                }
            }
        }
    }

    /// Ingests one batch and publishes the resulting epoch. The engine
    /// lock serialises concurrent ingests (epoch numbers are assigned
    /// in lock order); the epoch write lock is taken only for the
    /// `BTreeMap` insert, while the engine lock is still held, so
    /// epochs are published in ingest order.
    pub fn ingest(&self, events: &[StreamEvent]) -> Response {
        let mut engine = self.engine.lock().unwrap_or_else(|e| e.into_inner());
        let summary = engine.ingest_batch(events);
        let snap = engine.epoch_snapshot();
        self.epochs
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .publish(snap);
        Response::Ingested {
            epoch: summary.batch,
            events: summary.events as u64,
            applied: summary.applied as u64,
            edges: summary.edges as u64,
        }
    }
}

fn unknown_epoch(epoch: u64) -> Response {
    Response::error(ERR_UNKNOWN_EPOCH, format!("epoch {epoch} not retained"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_graph::generators;
    use ba_stream::{synthetic_stream, StreamConfig};

    fn state() -> ServeState {
        let g = generators::erdos_renyi(100, 0.06, 7);
        ServeState::new(StreamEngine::new(&g, StreamConfig::default()), 4)
    }

    #[test]
    fn ingest_publishes_monotone_epochs_and_evicts() {
        let g = generators::erdos_renyi(100, 0.06, 7);
        let st = state();
        let events = synthetic_stream(&g, 120, 3);
        for (i, batch) in events.chunks(20).enumerate() {
            let resp = st.ingest(batch);
            let Response::Ingested { epoch, .. } = resp else {
                panic!("expected Ingested, got {resp:?}");
            };
            assert_eq!(epoch, i as u64 + 1);
        }
        // retain = 4: epochs 3..=6 remain, 0..=2 evicted.
        assert!(st.pin(6).is_some());
        assert!(st.pin(3).is_some());
        assert!(st.pin(2).is_none());
        assert_eq!(st.pin(LATEST).unwrap().epoch, 6);
        match st.handle(&Request::EpochInfo) {
            Response::EpochInfo { epoch, oldest, .. } => {
                assert_eq!((epoch, oldest), (6, 3));
            }
            other => panic!("expected EpochInfo, got {other:?}"),
        }
    }

    #[test]
    fn pinned_queries_answer_from_the_pinned_epoch() {
        let g = generators::erdos_renyi(100, 0.06, 7);
        let st = state();
        let before = match st.handle(&Request::TopK { epoch: 0, k: 5 }) {
            Response::TopK { epoch, entries } => {
                assert_eq!(epoch, 0);
                entries
            }
            other => panic!("{other:?}"),
        };
        st.ingest(&synthetic_stream(&g, 40, 5));
        // The pinned answer is unchanged by the ingest.
        match st.handle(&Request::TopK { epoch: 0, k: 5 }) {
            Response::TopK { epoch, entries } => {
                assert_eq!(epoch, 0);
                assert_eq!(entries, before);
            }
            other => panic!("{other:?}"),
        }
        // LATEST resolves to the new epoch.
        match st.handle(&Request::PointScore {
            epoch: LATEST,
            node: 1,
        }) {
            Response::Score { epoch, .. } => assert_eq!(epoch, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_paths_are_deterministic() {
        let st = state();
        assert_eq!(
            st.handle(&Request::PointScore { epoch: 9, node: 0 }),
            Response::error(ERR_UNKNOWN_EPOCH, "epoch 9 not retained")
        );
        assert_eq!(
            st.handle(&Request::PointScore {
                epoch: 0,
                node: 100
            }),
            Response::error(ERR_NODE_RANGE, "node 100 out of range (n = 100)")
        );
    }
}
