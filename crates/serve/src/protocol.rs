//! The deterministic request/response protocol.
//!
//! Four request kinds travel over the framing layer, each encoded as a
//! tag byte plus fixed little-endian fields — no maps, no padding, no
//! floats-as-text — so encoding is a bijection and a replayed request
//! log produces byte-identical frames:
//!
//! | tag | request | payload |
//! |---|---|---|
//! | 1 | point-score | `epoch: u64, node: u32` |
//! | 2 | top-k | `epoch: u64, k: u32` |
//! | 3 | ingest-batch | `count: u32, (time: u64, u: u32, v: u32, insert: u8)*` |
//! | 4 | epoch-info | — |
//!
//! Queries carry an *epoch pin*: the epoch the response must be served
//! from ([`LATEST`] means "whatever is current"). Scores cross the wire
//! as raw IEEE-754 bit patterns, so responses are replayable
//! bit-for-bit — the transcript renderer ([`render_response`]) keeps
//! that exactness in its text form via the shared hex codec.
//!
//! Requests also have a line-oriented text form ([`parse_request_line`]
//! / `format_request`) used by the request-log files the CI replay
//! step records and replays.

use ba_graph::NodeId;
use ba_stream::snapshot::enc_f64;
use ba_stream::StreamEvent;

/// Epoch pin meaning "the latest published epoch".
pub const LATEST: u64 = u64::MAX;

/// Error code: the request payload could not be decoded.
pub const ERR_MALFORMED: u16 = 1;
/// Error code: the request tag byte is unknown.
pub const ERR_UNKNOWN_TAG: u16 = 2;
/// Error code: the pinned epoch is not retained (evicted or future).
pub const ERR_UNKNOWN_EPOCH: u16 = 3;
/// Error code: a node id is out of range for the served graph.
pub const ERR_NODE_RANGE: u16 = 4;
/// Error code: the pinned epoch's model refit was degenerate.
pub const ERR_DEGENERATE: u16 = 5;

/// One client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Anomaly score of `node` at `epoch`.
    PointScore {
        /// Epoch pin ([`LATEST`] for the current epoch).
        epoch: u64,
        /// Node to score.
        node: NodeId,
    },
    /// The `k` highest-scoring nodes at `epoch`.
    TopK {
        /// Epoch pin ([`LATEST`] for the current epoch).
        epoch: u64,
        /// Number of entries requested.
        k: u32,
    },
    /// Ingest one batch of edge events and publish the next epoch.
    IngestBatch {
        /// The batch, in stream order.
        events: Vec<StreamEvent>,
    },
    /// Current epoch number, retention window, and graph size.
    EpochInfo,
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request failed; `code` is one of the `ERR_*` constants.
    Error {
        /// Machine-readable failure class.
        code: u16,
        /// Human-readable detail (deterministic for a given request).
        message: String,
    },
    /// Answer to [`Request::PointScore`].
    Score {
        /// Epoch the score was computed at (resolved, never [`LATEST`]).
        epoch: u64,
        /// The scored node.
        node: NodeId,
        /// The anomaly score.
        score: f64,
    },
    /// Answer to [`Request::TopK`].
    TopK {
        /// Epoch the ranking was computed at.
        epoch: u64,
        /// `(node, score)` descending, ties toward smaller ids.
        entries: Vec<(NodeId, f64)>,
    },
    /// Answer to [`Request::IngestBatch`].
    Ingested {
        /// The newly published epoch.
        epoch: u64,
        /// Events presented in the batch.
        events: u64,
        /// Net edge flips applied.
        applied: u64,
        /// Edges after the batch.
        edges: u64,
    },
    /// Answer to [`Request::EpochInfo`].
    EpochInfo {
        /// Latest published epoch.
        epoch: u64,
        /// Oldest epoch still retained (pinnable).
        oldest: u64,
        /// Nodes in the served graph.
        nodes: u64,
        /// Edges at the latest epoch.
        edges: u64,
    },
}

impl Response {
    /// Convenience error constructor.
    pub fn error(code: u16, message: impl Into<String>) -> Self {
        Response::Error {
            code,
            message: message.into(),
        }
    }
}

/// Errors raised while decoding a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the declared fields did.
    Truncated,
    /// Bytes remained after the last field.
    Trailing(usize),
    /// The tag byte names no known message.
    UnknownTag(u8),
    /// An error message was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated payload"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after message"),
            WireError::UnknownTag(t) => write!(f, "unknown tag {t}"),
            WireError::BadUtf8 => write!(f, "error message is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian field reader over a payload slice.
struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        if self.0.len() < N {
            return Err(WireError::Truncated);
        }
        let (head, rest) = self.0.split_at(N);
        self.0 = rest;
        // ba-lint: allow(panic-path) -- split_at(N) after the length guard yields a head of exactly N bytes, so the array conversion cannot fail
        Ok(head.try_into().expect("split_at guarantees length"))
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take::<1>()?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take()?))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(WireError::Trailing(self.0.len()))
        }
    }
}

/// Encodes a request payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::PointScore { epoch, node } => {
            out.push(1);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&node.to_le_bytes());
        }
        Request::TopK { epoch, k } => {
            out.push(2);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&k.to_le_bytes());
        }
        Request::IngestBatch { events } => {
            out.push(3);
            out.extend_from_slice(&(events.len() as u32).to_le_bytes());
            for ev in events {
                out.extend_from_slice(&ev.time.to_le_bytes());
                out.extend_from_slice(&ev.u.to_le_bytes());
                out.extend_from_slice(&ev.v.to_le_bytes());
                out.push(u8::from(ev.insert));
            }
        }
        Request::EpochInfo => out.push(4),
    }
    out
}

/// Decodes a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut c = Cursor(payload);
    let req = match c.u8()? {
        1 => Request::PointScore {
            epoch: c.u64()?,
            node: c.u32()?,
        },
        2 => Request::TopK {
            epoch: c.u64()?,
            k: c.u32()?,
        },
        3 => {
            let count = c.u32()?;
            let mut events = Vec::with_capacity((count as usize).min(1 << 16));
            for _ in 0..count {
                let time = c.u64()?;
                let u = c.u32()?;
                let v = c.u32()?;
                let insert = c.u8()? != 0;
                events.push(StreamEvent::new(time, u, v, insert));
            }
            Request::IngestBatch { events }
        }
        4 => Request::EpochInfo,
        other => return Err(WireError::UnknownTag(other)),
    };
    c.finish()?;
    Ok(req)
}

/// Encodes a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Error { code, message } => {
            out.push(0);
            out.extend_from_slice(&code.to_le_bytes());
            out.extend_from_slice(&(message.len() as u32).to_le_bytes());
            out.extend_from_slice(message.as_bytes());
        }
        Response::Score { epoch, node, score } => {
            out.push(1);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&node.to_le_bytes());
            out.extend_from_slice(&score.to_bits().to_le_bytes());
        }
        Response::TopK { epoch, entries } => {
            out.push(2);
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (node, score) in entries {
                out.extend_from_slice(&node.to_le_bytes());
                out.extend_from_slice(&score.to_bits().to_le_bytes());
            }
        }
        Response::Ingested {
            epoch,
            events,
            applied,
            edges,
        } => {
            out.push(3);
            for field in [epoch, events, applied, edges] {
                out.extend_from_slice(&field.to_le_bytes());
            }
        }
        Response::EpochInfo {
            epoch,
            oldest,
            nodes,
            edges,
        } => {
            out.push(4);
            for field in [epoch, oldest, nodes, edges] {
                out.extend_from_slice(&field.to_le_bytes());
            }
        }
    }
    out
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut c = Cursor(payload);
    let resp = match c.u8()? {
        0 => {
            let code = c.u16()?;
            let len = c.u32()? as usize;
            if c.0.len() < len {
                return Err(WireError::Truncated);
            }
            let (text, rest) = c.0.split_at(len);
            c.0 = rest;
            Response::Error {
                code,
                message: String::from_utf8(text.to_vec()).map_err(|_| WireError::BadUtf8)?,
            }
        }
        1 => Response::Score {
            epoch: c.u64()?,
            node: c.u32()?,
            score: f64::from_bits(c.u64()?),
        },
        2 => {
            let epoch = c.u64()?;
            let count = c.u32()?;
            let mut entries = Vec::with_capacity((count as usize).min(1 << 16));
            for _ in 0..count {
                let node = c.u32()?;
                entries.push((node, f64::from_bits(c.u64()?)));
            }
            Response::TopK { epoch, entries }
        }
        3 => Response::Ingested {
            epoch: c.u64()?,
            events: c.u64()?,
            applied: c.u64()?,
            edges: c.u64()?,
        },
        4 => Response::EpochInfo {
            epoch: c.u64()?,
            oldest: c.u64()?,
            nodes: c.u64()?,
            edges: c.u64()?,
        },
        other => return Err(WireError::UnknownTag(other)),
    };
    c.finish()?;
    Ok(resp)
}

fn epoch_token(epoch: u64) -> String {
    if epoch == LATEST {
        "latest".to_string()
    } else {
        epoch.to_string()
    }
}

fn parse_epoch_token(tok: &str) -> Option<u64> {
    if tok == "latest" {
        Some(LATEST)
    } else {
        tok.parse().ok()
    }
}

/// Renders a request as one request-log line ([`parse_request_line`]'s
/// inverse).
pub fn format_request(req: &Request) -> String {
    match req {
        Request::PointScore { epoch, node } => {
            format!("score {node} @{}", epoch_token(*epoch))
        }
        Request::TopK { epoch, k } => format!("topk {k} @{}", epoch_token(*epoch)),
        Request::IngestBatch { events } => {
            let toks: Vec<String> = events
                .iter()
                .map(|ev| {
                    format!(
                        "{}:{}:{}:{}",
                        ev.time,
                        ev.u,
                        ev.v,
                        if ev.insert { '+' } else { '-' }
                    )
                })
                .collect();
            format!("ingest {}", toks.join(" "))
        }
        Request::EpochInfo => "epoch-info".to_string(),
    }
}

/// Parses one request-log line. Empty and `#`-comment lines return
/// `Ok(None)`; anything else unparseable returns the offending line.
pub fn parse_request_line(line: &str) -> Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let bad = || format!("cannot parse request line: {line:?}");
    let mut toks = line.split_whitespace();
    let req = match toks.next().ok_or_else(bad)? {
        "score" => {
            let node: NodeId = toks.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
            let epoch = toks
                .next()
                .and_then(|t| t.strip_prefix('@'))
                .and_then(parse_epoch_token)
                .ok_or_else(bad)?;
            Request::PointScore { epoch, node }
        }
        "topk" => {
            let k: u32 = toks.next().and_then(|t| t.parse().ok()).ok_or_else(bad)?;
            let epoch = toks
                .next()
                .and_then(|t| t.strip_prefix('@'))
                .and_then(parse_epoch_token)
                .ok_or_else(bad)?;
            Request::TopK { epoch, k }
        }
        "ingest" => {
            let mut events = Vec::new();
            for tok in toks.by_ref() {
                let mut parts = tok.split(':');
                let parsed = (|| {
                    let time: u64 = parts.next()?.parse().ok()?;
                    let u: NodeId = parts.next()?.parse().ok()?;
                    let v: NodeId = parts.next()?.parse().ok()?;
                    let insert = match parts.next()? {
                        "+" => true,
                        "-" => false,
                        _ => return None,
                    };
                    parts
                        .next()
                        .is_none()
                        .then(|| StreamEvent::new(time, u, v, insert))
                })();
                events.push(parsed.ok_or_else(bad)?);
            }
            Request::IngestBatch { events }
        }
        "epoch-info" => Request::EpochInfo,
        _ => return Err(bad()),
    };
    if toks.next().is_some() {
        return Err(bad());
    }
    Ok(Some(req))
}

/// Renders a response as one deterministic transcript line. Scores
/// appear as exact IEEE-754 hex (the shared `enc_f64` codec) plus a
/// fixed-precision human echo — the CI replay step byte-diffs these
/// lines across client counts.
pub fn render_response(resp: &Response) -> String {
    match resp {
        Response::Error { code, message } => format!("error code={code} msg={message}"),
        Response::Score { epoch, node, score } => {
            format!(
                "score epoch={epoch} node={node} bits={} (~{score:.6})",
                enc_f64(*score)
            )
        }
        Response::TopK { epoch, entries } => {
            let toks: Vec<String> = entries
                .iter()
                .map(|(node, score)| format!("{node}:{}", enc_f64(*score)))
                .collect();
            format!("topk epoch={epoch} k={} {}", entries.len(), toks.join(" "))
        }
        Response::Ingested {
            epoch,
            events,
            applied,
            edges,
        } => {
            format!("ingested epoch={epoch} events={events} applied={applied} edges={edges}")
        }
        Response::EpochInfo {
            epoch,
            oldest,
            nodes,
            edges,
        } => {
            format!("epoch-info epoch={epoch} oldest={oldest} nodes={nodes} edges={edges}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::PointScore { epoch: 3, node: 17 },
            Request::PointScore {
                epoch: LATEST,
                node: 0,
            },
            Request::TopK { epoch: 0, k: 10 },
            Request::IngestBatch {
                events: vec![
                    StreamEvent::new(0, 1, 2, true),
                    StreamEvent::new(1, 2, 3, false),
                ],
            },
            Request::IngestBatch { events: vec![] },
            Request::EpochInfo,
        ]
    }

    #[test]
    fn request_binary_roundtrip() {
        for req in sample_requests() {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
    }

    #[test]
    fn request_text_roundtrip() {
        for req in sample_requests() {
            let line = format_request(&req);
            assert_eq!(parse_request_line(&line).unwrap().unwrap(), req, "{line}");
        }
        assert_eq!(parse_request_line("# comment").unwrap(), None);
        assert_eq!(parse_request_line("   ").unwrap(), None);
        assert!(parse_request_line("score").is_err());
        assert!(parse_request_line("score 5 @nope").is_err());
        assert!(parse_request_line("ingest 0:1:2:?").is_err());
        assert!(parse_request_line("frobnicate 1").is_err());
    }

    #[test]
    fn response_binary_roundtrip() {
        let responses = vec![
            Response::error(ERR_UNKNOWN_EPOCH, "epoch 9 not retained"),
            Response::Score {
                epoch: 4,
                node: 9,
                score: -0.125,
            },
            Response::Score {
                epoch: 0,
                node: 1,
                score: f64::NAN,
            },
            Response::TopK {
                epoch: 2,
                entries: vec![(3, 1.5), (1, 0.25)],
            },
            Response::Ingested {
                epoch: 5,
                events: 40,
                applied: 31,
                edges: 512,
            },
            Response::EpochInfo {
                epoch: 7,
                oldest: 2,
                nodes: 100,
                edges: 480,
            },
        ];
        for resp in responses {
            let decoded = decode_response(&encode_response(&resp)).unwrap();
            // NaN != NaN under PartialEq; compare through the encoded
            // bytes, which carry exact bit patterns.
            assert_eq!(encode_response(&decoded), encode_response(&resp));
        }
    }

    #[test]
    fn unknown_tag_and_truncation_are_typed() {
        assert_eq!(decode_request(&[99]), Err(WireError::UnknownTag(99)));
        assert_eq!(decode_request(&[1, 0, 0]), Err(WireError::Truncated));
        let mut extra = encode_request(&Request::EpochInfo);
        extra.push(0);
        assert_eq!(decode_request(&extra), Err(WireError::Trailing(1)));
        assert_eq!(decode_response(&[]), Err(WireError::Truncated));
        assert_eq!(decode_response(&[7]), Err(WireError::UnknownTag(7)));
    }

    #[test]
    fn transcript_lines_are_exact() {
        let line = render_response(&Response::Score {
            epoch: 1,
            node: 2,
            score: 0.5,
        });
        assert_eq!(
            line,
            "score epoch=1 node=2 bits=3fe0000000000000 (~0.500000)"
        );
    }
}
