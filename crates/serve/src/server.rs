//! The TCP front door: one thread per connection over shared state.
//!
//! [`Server::start`] binds a listener, wraps the engine in a
//! [`ServeState`], and spawns an accept loop; each accepted connection
//! gets a thread running the read-frame → decode → handle → write-frame
//! loop. Framing errors end a connection deterministically:
//!
//! * clean close → the thread exits silently;
//! * severed mid-frame → the partial message is dropped and the
//!   connection closed (nothing downstream ever sees a torn request);
//! * zero-length / oversized header → one [`Response::Error`] frame is
//!   sent, then the connection is closed (the stream cannot be
//!   resynchronised after a rejected header);
//! * unknown request tag or malformed payload → an error response, and
//!   the connection **stays open** — the frame was fully consumed, so
//!   the stream is still in sync.

use crate::epoch::ServeState;
use crate::frame::{read_frame, write_frame, FrameError};
use crate::protocol::{
    decode_request, encode_response, Response, WireError, ERR_MALFORMED, ERR_UNKNOWN_TAG,
};
use ba_stream::StreamEngine;
use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Number of epochs kept pinnable (older pins get
    /// [`ERR_UNKNOWN_EPOCH`](crate::protocol::ERR_UNKNOWN_EPOCH)).
    pub retain: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { retain: 64 }
    }
}

/// A running server. Dropping the handle does **not** stop the accept
/// loop — call [`Server::shutdown`] (tests, benches) or [`Server::run`]
/// (the CLI's foreground mode, runs until the process dies).
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    state: Arc<ServeState>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts accepting connections over `engine`.
    pub fn start(addr: &str, engine: StreamEngine, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let state = Arc::new(ServeState::new(engine, cfg.retain));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, state, stop))
        };
        Ok(Server {
            local_addr,
            state,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared state (for in-process use and tests).
    pub fn state(&self) -> Arc<ServeState> {
        Arc::clone(&self.state)
    }

    /// Blocks on the accept loop — foreground serving for the CLI; the
    /// loop only ends when the process is killed.
    pub fn run(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, wakes the accept loop, and joins it. Clients
    /// still connected are disconnected (their sockets are shut down),
    /// so shutdown terminates even mid-conversation.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, state: Arc<ServeState>, stop: Arc<AtomicBool>) {
    // Each connection keeps a clone of its socket here so shutdown can
    // sever it; a thread blocked in `read_frame` would otherwise hang
    // the final join for as long as an idle client stays connected.
    let mut conns: Vec<(JoinHandle<()>, TcpStream)> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let Ok(socket) = stream.try_clone() else {
            continue;
        };
        let state = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            // The accept loop holds another clone of this socket, so
            // dropping `stream` on exit would NOT send the FIN — sever
            // explicitly, or a client awaiting our close blocks until
            // the whole server shuts down.
            let socket = stream.try_clone().ok();
            if let Err(e) = serve_connection(stream, &state) {
                // Severed connections are a client-side event, not a
                // server fault — note them and move on.
                eprintln!("[serve] connection dropped: {e}");
            }
            if let Some(socket) = socket {
                let _ = socket.shutdown(Shutdown::Both);
            }
        });
        conns.push((handle, socket));
        conns.retain(|(h, _)| !h.is_finished());
    }
    for (handle, socket) in conns {
        let _ = socket.shutdown(Shutdown::Both);
        let _ = handle.join();
    }
}

/// Runs one connection to completion. `Ok(())` covers both clean closes
/// and protocol rejections that were answered; `Err` is a severed
/// stream or IO failure with no one left to answer.
fn serve_connection(stream: TcpStream, state: &ServeState) -> Result<(), FrameError> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()),
            Err(e @ (FrameError::Empty | FrameError::Oversized { .. })) => {
                // Answer, then close: after a rejected header the byte
                // stream has no trustworthy frame boundary.
                let resp = Response::error(ERR_MALFORMED, format!("rejected frame: {e}"));
                let _ = write_frame(&mut writer, &encode_response(&resp));
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let resp = match decode_request(&payload) {
            Ok(req) => state.handle(&req),
            Err(WireError::UnknownTag(tag)) => {
                Response::error(ERR_UNKNOWN_TAG, format!("unknown request tag {tag}"))
            }
            Err(e) => Response::error(ERR_MALFORMED, format!("malformed request: {e}")),
        };
        write_frame(&mut writer, &encode_response(&resp))?;
    }
}
