//! # ba-serve
//!
//! Concurrent anomaly-scoring service over the streaming engine: the
//! network front door for the "millions of users" north star. A
//! [`Server`] multiplexes many concurrent clients over one shared
//! [`StreamEngine`](ba_stream::StreamEngine) using length-prefixed
//! binary framing and a deterministic, epoch-pinned request/response
//! protocol.
//!
//! The load-bearing ideas, each pinned by tests / CI gates:
//!
//! * **Framing** ([`frame`]) — every message is a little-endian `u64`
//!   length + payload; the reader distinguishes clean closes, severed
//!   connections (EOF mid-frame), and rejected headers (zero-length or
//!   oversized) so a dying client can never leave a torn request.
//! * **Epoch rotation** ([`epoch`]) — readers pin a frozen
//!   [`EpochSnapshot`](ba_stream::EpochSnapshot) (compacted `CsrGraph`
//!   plus features and fitted model behind a swapped `Arc`); ingest
//!   builds and publishes the next epoch after each batch. Reads never
//!   block ingest, and a publish can never tear a response.
//! * **Replay determinism** ([`protocol`], [`client`]) — queries carry
//!   an epoch pin and scores travel as raw IEEE-754 bits, so a
//!   replayed request log produces byte-identical response transcripts
//!   at any client count (the CI serve-replay step diffs 1 vs 8), and
//!   epoch-`N` responses are bit-identical to a from-scratch engine
//!   fed the same `N`-batch prefix (proptest).
//!
//! ## Example
//!
//! ```
//! use ba_graph::generators;
//! use ba_serve::{Connection, Request, Server, ServeConfig, Response, LATEST};
//! use ba_stream::{StreamConfig, StreamEngine};
//!
//! let g = generators::erdos_renyi(100, 0.06, 7);
//! let engine = StreamEngine::new(&g, StreamConfig::default());
//! let server = Server::start("127.0.0.1:0", engine, ServeConfig::default()).unwrap();
//! let mut conn = Connection::connect(&server.local_addr().to_string()).unwrap();
//! let resp = conn.call(&Request::PointScore { epoch: LATEST, node: 3 }).unwrap();
//! assert!(matches!(resp, Response::Score { epoch: 0, node: 3, .. }));
//! server.shutdown();
//! ```

pub mod client;
pub mod epoch;
pub mod protocol;
pub mod server;
pub mod workload;

/// The framing layer, shared with the experiment tracker — re-exported
/// from [`ba_net`] so `ba_serve::frame::*` paths keep working with zero
/// duplicated frame code.
pub use ba_net::frame;

pub use client::{replay, ClientError, Connection};
pub use epoch::{EpochStore, ServeState};
pub use frame::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, format_request,
    parse_request_line, render_response, Request, Response, WireError, LATEST,
};
pub use server::{ServeConfig, Server};
pub use workload::{load_requests, save_requests, synthetic_requests, WorkloadConfig};
