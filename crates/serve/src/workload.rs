//! Synthetic request workloads and request-log file IO.
//!
//! [`synthetic_requests`] derives a served-traffic workload from a
//! graph and a seed: event batches (the same generator the stream
//! engine's benches use) interleaved with point-score / top-k /
//! epoch-info queries, each query **pinned to the epoch current at its
//! position in the log** — after the `i`-th ingest the epoch is `i`,
//! so pins can be assigned statically and the log replays
//! byte-identically against any fresh server over the same graph.
//!
//! Logs are stored one request per line ([`save_requests`] /
//! [`load_requests`]) in the text form of
//! [`parse_request_line`].

use crate::protocol::{format_request, parse_request_line, Request};
use ba_graph::{Graph, NodeId};
use ba_stream::synthetic_stream;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Workload shape knobs.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Ingest batches in the log (epochs published by a full replay).
    pub batches: usize,
    /// Events per ingest batch.
    pub batch_size: usize,
    /// Queries between consecutive ingests.
    pub queries_per_batch: usize,
    /// `k` for the top-k queries.
    pub top_k: u32,
    /// RNG seed for events and query mix.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            batches: 8,
            batch_size: 50,
            queries_per_batch: 20,
            top_k: 5,
            seed: 7,
        }
    }
}

/// Generates the deterministic workload described in the module docs.
pub fn synthetic_requests(g: &Graph, cfg: &WorkloadConfig) -> Vec<Request> {
    let n = g.num_nodes() as NodeId;
    let events = synthetic_stream(g, cfg.batches * cfg.batch_size, cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let mut out = Vec::new();
    let mut queries = |out: &mut Vec<Request>, epoch: u64| {
        for _ in 0..cfg.queries_per_batch {
            match rng.gen_range(0..10u32) {
                0 => out.push(Request::EpochInfo),
                1 | 2 => out.push(Request::TopK {
                    epoch,
                    k: cfg.top_k,
                }),
                _ => out.push(Request::PointScore {
                    epoch,
                    node: rng.gen_range(0..n),
                }),
            }
        }
    };
    queries(&mut out, 0);
    for (i, batch) in events.chunks(cfg.batch_size).enumerate() {
        out.push(Request::IngestBatch {
            events: batch.to_vec(),
        });
        queries(&mut out, i as u64 + 1);
    }
    out
}

/// Writes a request log, one request per line.
pub fn save_requests<P: AsRef<Path>>(requests: &[Request], path: P) -> std::io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "# ba-serve request log v1")?;
    for req in requests {
        writeln!(w, "{}", format_request(req))?;
    }
    w.flush()
}

/// Reads a request log written by [`save_requests`].
pub fn load_requests<P: AsRef<Path>>(path: P) -> Result<Vec<Request>, String> {
    let file = std::fs::File::open(&path).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    for (idx, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        if let Some(req) =
            parse_request_line(&line).map_err(|e| format!("line {}: {e}", idx + 1))?
        {
            out.push(req);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ba_graph::generators;

    #[test]
    fn workload_is_deterministic_and_epoch_pinned() {
        let g = generators::erdos_renyi(80, 0.06, 3);
        let cfg = WorkloadConfig::default();
        let a = synthetic_requests(&g, &cfg);
        let b = synthetic_requests(&g, &cfg);
        assert_eq!(a, b);
        // Epoch pins never exceed the number of ingests seen so far.
        let mut ingests = 0u64;
        for req in &a {
            match req {
                Request::IngestBatch { .. } => ingests += 1,
                Request::PointScore { epoch, .. } | Request::TopK { epoch, .. } => {
                    assert_eq!(*epoch, ingests)
                }
                Request::EpochInfo => {}
            }
        }
        assert_eq!(ingests, cfg.batches as u64);
    }

    #[test]
    fn request_log_file_roundtrip() {
        let g = generators::erdos_renyi(50, 0.08, 5);
        let requests = synthetic_requests(
            &g,
            &WorkloadConfig {
                batches: 3,
                batch_size: 10,
                queries_per_batch: 5,
                ..WorkloadConfig::default()
            },
        );
        let path = std::env::temp_dir().join("ba_serve_requests_roundtrip.req");
        save_requests(&requests, &path).unwrap();
        assert_eq!(load_requests(&path).unwrap(), requests);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_log_line_reports_position() {
        let path = std::env::temp_dir().join("ba_serve_requests_bad.req");
        std::fs::write(&path, "# ok\nscore 1 @0\nnonsense here\n").unwrap();
        let err = load_requests(&path).unwrap_err();
        assert!(err.starts_with("line 3:"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
