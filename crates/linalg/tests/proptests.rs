//! Property-based tests for the linear-algebra substrate.

use ba_linalg::{inverse, par_matmul, simple_ols, solve, solve2, Matrix, Vector};
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0..10.0f64, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

fn square_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-10.0..10.0f64, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data))
    })
}

proptest! {
    #[test]
    fn transpose_is_involution(m in small_matrix(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_transpose_identity(m in small_matrix(6)) {
        // (A Aᵀ) must be symmetric.
        let prod = m.matmul(&m.transpose());
        prop_assert!(prod.is_symmetric(1e-8));
    }

    #[test]
    fn matmul_associativity(
        a in small_matrix(5),
        bdata in proptest::collection::vec(-5.0..5.0f64, 25),
        cdata in proptest::collection::vec(-5.0..5.0f64, 25),
    ) {
        let k = a.cols();
        let b = Matrix::from_vec(k, 5, bdata[..k * 5].to_vec());
        let c = Matrix::from_vec(5, 5, cdata.clone());
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!((&left - &right).max_abs() < 1e-6);
    }

    #[test]
    fn par_matmul_matches_serial(a in small_matrix(12), threads in 1usize..6) {
        let b = a.transpose();
        let serial = a.matmul(&b);
        let parallel = par_matmul(&a, &b, threads);
        prop_assert!((&serial - &parallel).max_abs() < 1e-10);
    }

    #[test]
    fn solve_residual_is_small(m in square_matrix(6), scale in 0.5..2.0f64) {
        let n = m.rows();
        // Diagonally dominate to guarantee non-singularity.
        let mut a = m;
        for i in 0..n {
            let row_sum: f64 = a.row(i).iter().map(|v| v.abs()).sum();
            a[(i, i)] = (row_sum + 1.0) * scale;
        }
        let b = Vector::ones(n);
        let x = solve(&a, &b).unwrap();
        let r = a.matvec(&x);
        for i in 0..n {
            prop_assert!((r[i] - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn inverse_roundtrip(m in square_matrix(5)) {
        let n = m.rows();
        let mut a = m;
        for i in 0..n {
            let row_sum: f64 = a.row(i).iter().map(|v| v.abs()).sum();
            a[(i, i)] = row_sum + 1.0;
        }
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        let id = Matrix::identity(n);
        prop_assert!((&prod - &id).max_abs() < 1e-7);
    }

    #[test]
    fn solve2_matches_general_solver(
        a in -10.0..10.0f64, b in -10.0..10.0f64,
        c in -10.0..10.0f64, e in -10.0..10.0f64, f in -10.0..10.0f64,
    ) {
        // Force a well-conditioned system.
        let d = a.abs() + b.abs() + c.abs() + 1.0;
        let a_big = a + 20.0;
        if let Ok((x0, x1)) = solve2(a_big, b, c, d, e, f) {
            let m = Matrix::from_rows(&[&[a_big, b], &[c, d]]);
            let rhs = Vector::from(vec![e, f]);
            let x = solve(&m, &rhs).unwrap();
            prop_assert!((x[0] - x0).abs() < 1e-6);
            prop_assert!((x[1] - x1).abs() < 1e-6);
        }
    }

    #[test]
    fn ols_fit_minimises_rss(
        xs in proptest::collection::vec(-100.0..100.0f64, 3..40),
        slope in -5.0..5.0f64,
        intercept in -5.0..5.0f64,
        d_slope in -0.5..0.5f64,
        d_int in -0.5..0.5f64,
    ) {
        // Distinct-enough x values.
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assume!(max - min > 1.0);
        let ys: Vec<f64> = xs.iter().enumerate()
            .map(|(i, &x)| intercept + slope * x + ((i % 3) as f64 - 1.0) * 0.3)
            .collect();
        let fit = simple_ols(&xs, &ys).unwrap();
        // Any perturbed line must have RSS >= the OLS fit's RSS.
        let perturbed_rss: f64 = xs.iter().zip(&ys)
            .map(|(&x, &y)| {
                let r = y - ((fit.intercept + d_int) + (fit.slope + d_slope) * x);
                r * r
            })
            .sum();
        prop_assert!(perturbed_rss + 1e-9 >= fit.rss);
    }
}
