//! Linear solvers: Gaussian elimination with partial pivoting, a 2×2
//! closed form (the OLS normal equations in OddBall are always 2×2), and
//! matrix inversion built on the general solver.

use crate::{Matrix, Vector};

/// Errors produced by the solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The system matrix is singular (or numerically so).
    Singular,
    /// Operand dimensions do not agree.
    DimensionMismatch,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "singular matrix"),
            LinalgError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solves the 2×2 system `[[a,b],[c,d]] x = [e,f]` in closed form.
///
/// This is the hot path for OddBall's OLS normal equations, which are
/// always 2×2 regardless of graph size.
pub fn solve2(a: f64, b: f64, c: f64, d: f64, e: f64, f: f64) -> Result<(f64, f64), LinalgError> {
    let det = a * d - b * c;
    // Scale-aware singularity test: a graph where every node has the same
    // degree makes the design matrix rank-1.
    let scale = a.abs().max(b.abs()).max(c.abs()).max(d.abs()).max(1.0);
    if det.abs() <= 1e-12 * scale * scale {
        return Err(LinalgError::Singular);
    }
    Ok(((e * d - b * f) / det, (a * f - e * c) / det))
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
pub fn solve(a: &Matrix, b: &Vector) -> Result<Vector, LinalgError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.clone();
    for col in 0..n {
        // Partial pivot: pick the largest magnitude entry in this column.
        let mut pivot = col;
        let mut best = m[(col, col)].abs();
        for r in (col + 1)..n {
            let v = m[(r, col)].abs();
            if v > best {
                best = v;
                pivot = r;
            }
        }
        if best <= 1e-13 {
            return Err(LinalgError::Singular);
        }
        if pivot != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot, j)];
                m[(pivot, j)] = tmp;
            }
            let tmp = rhs[col];
            rhs[col] = rhs[pivot];
            rhs[pivot] = tmp;
        }
        let inv_p = 1.0 / m[(col, col)];
        for r in (col + 1)..n {
            let factor = m[(r, col)] * inv_p;
            if factor == 0.0 {
                continue;
            }
            m[(r, col)] = 0.0;
            for j in (col + 1)..n {
                let upd = m[(col, j)] * factor;
                m[(r, j)] -= upd;
            }
            rhs[r] -= rhs[col] * factor;
        }
    }
    // Back substitution.
    let mut x = Vector::zeros(n);
    for i in (0..n).rev() {
        let mut acc = rhs[i];
        for j in (i + 1)..n {
            acc -= m[(i, j)] * x[j];
        }
        x[i] = acc / m[(i, i)];
    }
    Ok(x)
}

/// Inverts a square matrix by solving against the identity columns.
pub fn inverse(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::DimensionMismatch);
    }
    let mut inv = Matrix::zeros(n, n);
    for j in 0..n {
        let mut e = Vector::zeros(n);
        e[j] = 1.0;
        let col = solve(a, &e)?;
        for i in 0..n {
            inv[(i, j)] = col[i];
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn solve2_known_system() {
        // x + y = 3, x - y = 1  =>  x = 2, y = 1
        let (x, y) = solve2(1.0, 1.0, 1.0, -1.0, 3.0, 1.0).unwrap();
        assert!(approx_eq(x, 2.0, 1e-12));
        assert!(approx_eq(y, 1.0, 1e-12));
    }

    #[test]
    fn solve2_singular_detected() {
        assert_eq!(
            solve2(1.0, 2.0, 2.0, 4.0, 1.0, 2.0),
            Err(LinalgError::Singular)
        );
    }

    #[test]
    fn solve_matches_manual_3x3() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let b = Vector::from(vec![8.0, -11.0, -3.0]);
        let x = solve(&a, &b).unwrap();
        // Known solution: x=2, y=3, z=-1
        assert!(approx_eq(x[0], 2.0, 1e-9));
        assert!(approx_eq(x[1], 3.0, 1e-9));
        assert!(approx_eq(x[2], -1.0, 1e-9));
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero pivot in the (0,0) position forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = Vector::from(vec![2.0, 3.0]);
        let x = solve(&a, &b).unwrap();
        assert!(approx_eq(x[0], 3.0, 1e-12));
        assert!(approx_eq(x[1], 2.0, 1e-12));
    }

    #[test]
    fn solve_singular_errors() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let b = Vector::from(vec![1.0, 2.0]);
        assert_eq!(solve(&a, &b), Err(LinalgError::Singular));
    }

    #[test]
    fn solve_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Vector::zeros(2);
        assert_eq!(solve(&a, &b), Err(LinalgError::DimensionMismatch));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        let id = Matrix::identity(2);
        assert!((&prod - &id).max_abs() < 1e-10);
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let id = Matrix::identity(4);
        let inv = inverse(&id).unwrap();
        assert!((&inv - &id).max_abs() < 1e-12);
    }
}
