//! Thread-parallel matrix multiplication using std scoped threads.
//!
//! ContinuousA relaxes the whole adjacency matrix to `[0,1]^{n×n}` (paper
//! Sec. V-A2), so its forward/backward passes need dense `n × n` products
//! with `n ≈ 1000`. Splitting the output rows across threads makes those
//! experiment runs several times faster without any unsafe code.

use crate::matrix::{matmul_into, Matrix};

/// Parallel matrix product `a * b`, splitting output rows across up to
/// `threads` workers. `threads == 0` or `1` falls back to the serial
/// kernel. Results are bit-identical to [`Matrix::matmul`] because each
/// worker runs the same inner loop on a disjoint row range.
pub fn par_matmul(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "par_matmul dimension mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let threads = threads.max(1).min(a.rows().max(1));
    if threads == 1 || a.rows() < 64 {
        return a.matmul(b);
    }
    let mut out = Matrix::zeros(a.rows(), b.cols());
    let p = b.cols();
    let rows = a.rows();
    let chunk_rows = rows.div_ceil(threads);
    {
        let out_slice = out.as_mut_slice();
        let chunks: Vec<&mut [f64]> = out_slice.chunks_mut(chunk_rows * p).collect();
        std::thread::scope(|scope| {
            for (idx, chunk) in chunks.into_iter().enumerate() {
                let row_start = idx * chunk_rows;
                scope.spawn(move || {
                    let local_rows = chunk.len() / p;
                    // Build a view of rows [row_start, row_start+local_rows)
                    // of `a`, multiply into the chunk.
                    let a_rows =
                        &a.as_slice()[row_start * a.cols()..(row_start + local_rows) * a.cols()];
                    let a_view = Matrix::from_vec(local_rows, a.cols(), a_rows.to_vec());
                    let mut local = Matrix::zeros(local_rows, p);
                    matmul_into(&a_view, b, &mut local);
                    chunk.copy_from_slice(local.as_slice());
                });
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
    }

    #[test]
    fn parallel_matches_serial_small() {
        let a = pseudo_random_matrix(10, 7, 1);
        let b = pseudo_random_matrix(7, 13, 2);
        let serial = a.matmul(&b);
        let parallel = par_matmul(&a, &b, 4);
        assert!((&serial - &parallel).max_abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial_large() {
        let a = pseudo_random_matrix(200, 150, 3);
        let b = pseudo_random_matrix(150, 120, 4);
        let serial = a.matmul(&b);
        for threads in [1, 2, 3, 8] {
            let parallel = par_matmul(&a, &b, threads);
            assert!((&serial - &parallel).max_abs() < 1e-12, "threads={threads}");
        }
    }

    #[test]
    fn uneven_row_split() {
        // 67 rows across 4 threads exercises the remainder chunk.
        let a = pseudo_random_matrix(67, 33, 5);
        let b = pseudo_random_matrix(33, 29, 6);
        let serial = a.matmul(&b);
        let parallel = par_matmul(&a, &b, 4);
        assert!((&serial - &parallel).max_abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatch_panics() {
        let a = Matrix::zeros(4, 5);
        let b = Matrix::zeros(4, 5);
        let _ = par_matmul(&a, &b, 2);
    }
}
