//! Simple and weighted ordinary-least-squares fits of `y = b0 + b1 x`.
//!
//! OddBall's Egonet Density Power Law is fitted in log–log space with
//! exactly this two-parameter model (paper Eq. (1)–(2)); the weighted
//! variant is the inner step of the Huber IRLS estimator in `ba-oddball`.

use crate::solve::{solve2, LinalgError};

/// A fitted line `y = intercept + slope * x` plus goodness-of-fit info.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// `b0` in `y = b0 + b1 x`.
    pub intercept: f64,
    /// `b1` in `y = b0 + b1 x`.
    pub slope: f64,
    /// Residual sum of squares at the fit.
    pub rss: f64,
    /// Number of observations used.
    pub n: usize,
}

impl LinearFit {
    /// Predicted value at `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Residual `y - prediction(x)`.
    #[inline]
    pub fn residual(&self, x: f64, y: f64) -> f64 {
        y - self.predict(x)
    }
}

/// Errors for the two-parameter OLS fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ols2Error {
    /// Fewer than two observations (or fewer than two with positive
    /// weight): the line is under-determined.
    TooFewPoints,
    /// The design matrix is singular — all x values (with weight) equal.
    Degenerate,
    /// x/y/weight lengths differ.
    LengthMismatch,
}

impl std::fmt::Display for Ols2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ols2Error::TooFewPoints => write!(f, "need at least 2 points for a line fit"),
            Ols2Error::Degenerate => write!(f, "degenerate design matrix (all x equal?)"),
            Ols2Error::LengthMismatch => write!(f, "input length mismatch"),
        }
    }
}

impl std::error::Error for Ols2Error {}

/// Ordinary least squares for `y = b0 + b1 x`.
///
/// Equivalent to the paper's Eq. (2) with `X = [1, x]`: the normal
/// equations reduce to a 2×2 solve.
pub fn simple_ols(x: &[f64], y: &[f64]) -> Result<LinearFit, Ols2Error> {
    if x.len() != y.len() {
        return Err(Ols2Error::LengthMismatch);
    }
    weighted_ols(x, y, None)
}

/// Weighted least squares for `y = b0 + b1 x` with non-negative weights.
///
/// Passing `None` for the weights is plain OLS. Points with zero weight
/// are ignored entirely (this is how RANSAC consensus refits reuse the
/// same kernel).
pub fn weighted_ols(x: &[f64], y: &[f64], w: Option<&[f64]>) -> Result<LinearFit, Ols2Error> {
    if x.len() != y.len() {
        return Err(Ols2Error::LengthMismatch);
    }
    if let Some(w) = w {
        if w.len() != x.len() {
            return Err(Ols2Error::LengthMismatch);
        }
    }
    let weight = |i: usize| w.map_or(1.0, |w| w[i]);

    let mut sw = 0.0; // Σ w
    let mut swx = 0.0; // Σ w x
    let mut swxx = 0.0; // Σ w x²
    let mut swy = 0.0; // Σ w y
    let mut swxy = 0.0; // Σ w x y
    let mut n_eff = 0usize;
    for i in 0..x.len() {
        let wi = weight(i);
        debug_assert!(wi >= 0.0, "negative weight");
        if wi == 0.0 {
            continue;
        }
        n_eff += 1;
        sw += wi;
        swx += wi * x[i];
        swxx += wi * x[i] * x[i];
        swy += wi * y[i];
        swxy += wi * x[i] * y[i];
    }
    if n_eff < 2 {
        return Err(Ols2Error::TooFewPoints);
    }
    let (intercept, slope) = solve2(sw, swx, swx, swxx, swy, swxy).map_err(|e| match e {
        LinalgError::Singular => Ols2Error::Degenerate,
        LinalgError::DimensionMismatch => Ols2Error::LengthMismatch,
    })?;
    let mut rss = 0.0;
    for i in 0..x.len() {
        let wi = weight(i);
        if wi == 0.0 {
            continue;
        }
        let r = y[i] - (intercept + slope * x[i]);
        rss += wi * r * r;
    }
    Ok(LinearFit {
        intercept,
        slope,
        rss,
        n: n_eff,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn exact_line_recovered() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 + 0.5 * v).collect();
        let fit = simple_ols(&x, &y).unwrap();
        assert!(approx_eq(fit.intercept, 2.0, 1e-12));
        assert!(approx_eq(fit.slope, 0.5, 1e-12));
        assert!(fit.rss < 1e-20);
        assert_eq!(fit.n, 4);
    }

    #[test]
    fn noisy_line_close() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [1.1, 2.9, 5.2, 6.8, 9.1];
        let fit = simple_ols(&x, &y).unwrap();
        assert!((fit.slope - 2.0).abs() < 0.1);
        assert!((fit.intercept - 1.0).abs() < 0.3);
        assert!(fit.rss > 0.0);
    }

    #[test]
    fn residual_and_predict_consistent() {
        let fit = LinearFit {
            intercept: 1.0,
            slope: 2.0,
            rss: 0.0,
            n: 2,
        };
        assert_eq!(fit.predict(3.0), 7.0);
        assert_eq!(fit.residual(3.0, 10.0), 3.0);
    }

    #[test]
    fn zero_weight_points_ignored() {
        let x = [0.0, 1.0, 2.0, 100.0];
        let y = [0.0, 1.0, 2.0, -999.0];
        let w = [1.0, 1.0, 1.0, 0.0];
        let fit = weighted_ols(&x, &y, Some(&w)).unwrap();
        assert!(approx_eq(fit.slope, 1.0, 1e-10));
        assert!(approx_eq(fit.intercept, 0.0, 1e-10));
        assert_eq!(fit.n, 3);
    }

    #[test]
    fn downweighting_reduces_outlier_pull() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [0.0, 1.0, 2.0, 30.0]; // big outlier at the end
        let plain = simple_ols(&x, &y).unwrap();
        let w = [1.0, 1.0, 1.0, 0.01];
        let weighted = weighted_ols(&x, &y, Some(&w)).unwrap();
        assert!((weighted.slope - 1.0).abs() < (plain.slope - 1.0).abs());
    }

    #[test]
    fn too_few_points() {
        assert_eq!(simple_ols(&[1.0], &[1.0]), Err(Ols2Error::TooFewPoints));
        let w = [1.0, 0.0, 0.0];
        assert_eq!(
            weighted_ols(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], Some(&w)),
            Err(Ols2Error::TooFewPoints)
        );
    }

    #[test]
    fn degenerate_x() {
        assert_eq!(
            simple_ols(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(Ols2Error::Degenerate)
        );
    }

    #[test]
    fn length_mismatch() {
        assert_eq!(
            simple_ols(&[1.0], &[1.0, 2.0]),
            Err(Ols2Error::LengthMismatch)
        );
        assert_eq!(
            weighted_ols(&[1.0, 2.0], &[1.0, 2.0], Some(&[1.0])),
            Err(Ols2Error::LengthMismatch)
        );
    }
}
