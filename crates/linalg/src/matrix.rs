//! Dense row-major `f64` matrix with blocked multiplication.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense, row-major matrix of `f64` values.
///
/// The storage is a single contiguous `Vec<f64>` of length `rows * cols`,
/// which keeps row traversals cache-friendly; the blocked [`Matrix::matmul`]
/// kernel exploits this layout.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of row slices. All rows must have the
    /// same length.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing buffer (row-major) as a matrix.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[f64]) -> Self {
        let n = entries.len();
        let mut m = Self::zeros(n, n);
        for (i, &e) in entries.iter().enumerate() {
            m[(i, i)] = e;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Returns `true` if the matrix is square and symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Matrix–matrix product using an i-k-j loop order so the inner loop
    /// streams through contiguous rows of both operands.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        matmul_into(self, other, &mut out);
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matvec(&self, v: &crate::Vector) -> crate::Vector {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v.as_slice()) {
                acc += a * b;
            }
            *slot = acc;
        }
        crate::Vector::from(out)
    }

    /// In-place scaling by `s`.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns `self * s` as a new matrix.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// `self += other * s` (AXPY on the whole buffer).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy_mut(&mut self, s: f64, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_mut(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// The main diagonal as a vector. Works for rectangular matrices too
    /// (length is `min(rows, cols)`).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Trace (sum of diagonal entries).
    pub fn trace(&self) -> f64 {
        self.diagonal().iter().sum()
    }
}

/// Writes `a * b` into `out` (which must be pre-sized and is overwritten).
/// Extracted so the parallel kernel can reuse the same inner loop.
pub(crate) fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols, b.rows);
    assert_eq!(out.rows, a.rows);
    assert_eq!(out.cols, b.cols);
    out.data.fill(0.0);
    let n = a.cols;
    let p = b.cols;
    for i in 0..a.rows {
        let out_row = &mut out.data[i * p..(i + 1) * p];
        let a_row = &a.data[i * n..(i + 1) * n];
        for (k, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue; // common case for sparse-ish adjacency matrices
            }
            let b_row = &b.data[k * p..(k + 1) * p];
            for (o, &bkj) in out_row.iter_mut().zip(b_row) {
                *o += aik * bkj;
            }
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, other: &Matrix) -> Matrix {
        self.matmul(other)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, " ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vector;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]); // 1x3
        let b = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]); // 3x1
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 1);
        assert_eq!(c.cols(), 1);
        assert_eq!(c[(0, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_entries() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let t = a.transpose();
        assert_eq!(t[(0, 1)], 3.0);
        assert_eq!(t[(1, 0)], 2.0);
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = Vector::from(vec![1.0, -1.0]);
        assert_eq!(a.matvec(&v).as_slice(), &[-1.0, -1.0]);
    }

    #[test]
    fn symmetric_detection() {
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 5.0]]);
        let ns = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 5.0]]);
        assert!(s.is_symmetric(1e-12));
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn diag_and_trace() {
        let d = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.trace(), 6.0);
        assert_eq!(d.diagonal(), vec![1.0, 2.0, 3.0]);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[2.0, 0.5], &[1.0, 0.25]]);
        assert_eq!(
            a.hadamard(&b),
            Matrix::from_rows(&[&[2.0, 1.0], &[3.0, 1.0]])
        );
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]);
        let c = &(&a + &b) - &b;
        for i in 0..2 {
            for j in 0..2 {
                assert!((c[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::identity(2);
        a.axpy_mut(3.0, &b);
        assert_eq!(a, Matrix::diag(&[3.0, 3.0]));
    }

    #[test]
    fn map_and_norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.map(f64::abs).sum(), 7.0);
    }

    #[test]
    fn from_fn_indexing() {
        let a = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(a[(2, 1)], 21.0);
        assert_eq!(a.row(1), &[10.0, 11.0]);
        assert_eq!(a.col(0), vec![0.0, 10.0, 20.0]);
    }
}
