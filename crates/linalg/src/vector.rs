//! Dense `f64` vector with the handful of BLAS-1 operations the workspace
//! needs.

use serde::{Deserialize, Serialize};
use std::ops::{Index, IndexMut};

/// A dense vector of `f64` values.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Vector(Vec<f64>);

impl Vector {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self(vec![0.0; n])
    }

    /// Creates a vector of `n` ones.
    pub fn ones(n: usize) -> Self {
        Self(vec![1.0; n])
    }

    /// Length of the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the vector has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Immutable slice view.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Mutable slice view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consumes the vector, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.0
    }

    /// Dot product.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot length mismatch");
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// L1 norm.
    pub fn norm1(&self) -> f64 {
        self.0.iter().map(|x| x.abs()).sum()
    }

    /// `self += s * other`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn axpy_mut(&mut self, s: f64, other: &Vector) {
        assert_eq!(self.len(), other.len(), "axpy length mismatch");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += s * b;
        }
    }

    /// Scales every entry by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.0 {
            *x *= s;
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.0.iter().sum()
    }

    /// Arithmetic mean (NaN for an empty vector).
    pub fn mean(&self) -> f64 {
        self.sum() / self.len() as f64
    }

    /// Applies `f` to every entry, returning a new vector.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Vector {
        Vector(self.0.iter().map(|&x| f(x)).collect())
    }

    /// Iterator over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.0.iter()
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Self(v)
    }
}

impl From<&[f64]> for Vector {
    fn from(v: &[f64]) -> Self {
        Self(v.to_vec())
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let a = Vector::from(vec![3.0, 4.0]);
        assert_eq!(a.dot(&a), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm1(), 7.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Vector::zeros(3);
        let b = Vector::ones(3);
        a.axpy_mut(2.5, &b);
        assert_eq!(a.as_slice(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn mean_of_known_values() {
        let v = Vector::from(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.mean(), 2.5);
    }

    #[test]
    fn map_preserves_length() {
        let v = Vector::from(vec![-1.0, 2.0]);
        let m = v.map(f64::abs);
        assert_eq!(m.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }

    #[test]
    fn scale_and_sum() {
        let mut v = Vector::ones(4);
        v.scale_mut(0.25);
        assert!((v.sum() - 1.0).abs() < 1e-15);
    }
}
