//! Spectral helpers: power iteration, top-k symmetric eigen-decomposition
//! by deflation, and PCA. Used by `ba-gad` to project node embeddings
//! (Figs. 8–9) and as the initialisation for t-SNE.

use crate::{Matrix, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a PCA fit: the mean that was subtracted and the principal
/// axes (one per row).
#[derive(Debug, Clone)]
pub struct PcaModel {
    /// Per-feature mean of the training data (length = #features).
    pub mean: Vec<f64>,
    /// `k × d` matrix; row `i` is the i-th principal axis (unit norm).
    pub components: Matrix,
    /// Eigenvalues of the covariance matrix for the kept components.
    pub explained_variance: Vec<f64>,
}

impl PcaModel {
    /// Projects an `n × d` data matrix into the `k`-dimensional principal
    /// subspace, returning `n × k` scores.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let n = data.rows();
        let d = data.cols();
        assert_eq!(d, self.mean.len(), "PCA feature count mismatch");
        let k = self.components.rows();
        let mut out = Matrix::zeros(n, k);
        for i in 0..n {
            for c in 0..k {
                let mut acc = 0.0;
                let axis = self.components.row(c);
                let row = data.row(i);
                for j in 0..d {
                    acc += (row[j] - self.mean[j]) * axis[j];
                }
                out[(i, c)] = acc;
            }
        }
        out
    }
}

/// Dominant eigenpair of a symmetric matrix via power iteration with a
/// deterministic seeded start. Returns `(eigenvalue, eigenvector)`.
pub fn power_iteration(m: &Matrix, iters: usize, seed: u64) -> (f64, Vector) {
    let n = m.rows();
    assert_eq!(n, m.cols(), "power iteration needs a square matrix");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = Vector::from((0..n).map(|_| rng.gen_range(-1.0..1.0)).collect::<Vec<_>>());
    let norm = v.norm();
    if norm > 0.0 {
        v.scale_mut(1.0 / norm);
    }
    for _ in 0..iters {
        let w = m.matvec(&v);
        let wn = w.norm();
        if wn <= 1e-300 {
            return (0.0, v); // in the kernel: give up gracefully
        }
        v = w;
        v.scale_mut(1.0 / wn);
    }
    // Rayleigh quotient for the final iterate.
    let lambda = v.dot(&m.matvec(&v));
    (lambda, v)
}

/// Top-`k` eigenpairs of a symmetric matrix by power iteration with
/// Hotelling deflation. Adequate for the small covariance matrices PCA
/// works with (d ≤ a few hundred).
pub fn symmetric_topk(m: &Matrix, k: usize, iters: usize, seed: u64) -> Vec<(f64, Vector)> {
    let mut work = m.clone();
    let mut pairs = Vec::with_capacity(k);
    for c in 0..k.min(m.rows()) {
        let (lambda, v) = power_iteration(&work, iters, seed.wrapping_add(c as u64));
        // Deflate: work -= lambda v vᵀ
        let n = work.rows();
        for i in 0..n {
            for j in 0..n {
                work[(i, j)] -= lambda * v[i] * v[j];
            }
        }
        pairs.push((lambda, v));
    }
    pairs
}

/// Fits PCA with `k` components on an `n × d` data matrix (rows are
/// samples). Deterministic given `seed`.
pub fn pca(data: &Matrix, k: usize, seed: u64) -> PcaModel {
    let n = data.rows();
    let d = data.cols();
    assert!(n >= 2, "PCA needs at least two samples");
    let k = k.min(d);
    // Column means.
    let mut mean = vec![0.0; d];
    for i in 0..n {
        for (j, m) in mean.iter_mut().enumerate() {
            *m += data[(i, j)];
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    // Covariance (d × d).
    let mut cov = Matrix::zeros(d, d);
    for i in 0..n {
        let row = data.row(i);
        for a in 0..d {
            let da = row[a] - mean[a];
            if da == 0.0 {
                continue;
            }
            for b in a..d {
                let v = da * (row[b] - mean[b]);
                cov[(a, b)] += v;
            }
        }
    }
    let denom = (n - 1) as f64;
    for a in 0..d {
        for b in a..d {
            let v = cov[(a, b)] / denom;
            cov[(a, b)] = v;
            cov[(b, a)] = v;
        }
    }
    let pairs = symmetric_topk(&cov, k, 200, seed);
    let mut components = Matrix::zeros(pairs.len(), d);
    let mut explained = Vec::with_capacity(pairs.len());
    for (r, (lambda, v)) in pairs.iter().enumerate() {
        explained.push(*lambda);
        components.row_mut(r).copy_from_slice(v.as_slice());
    }
    PcaModel {
        mean,
        components,
        explained_variance: explained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_iteration_finds_dominant_pair() {
        let m = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 1.0]]);
        let (lambda, v) = power_iteration(&m, 200, 42);
        assert!((lambda - 2.0).abs() < 1e-8);
        assert!(v[0].abs() > 0.999);
        assert!(v[1].abs() < 1e-4);
    }

    #[test]
    fn power_iteration_on_zero_matrix() {
        let m = Matrix::zeros(3, 3);
        let (lambda, _v) = power_iteration(&m, 50, 1);
        assert_eq!(lambda, 0.0);
    }

    #[test]
    fn topk_recovers_diagonal_spectrum() {
        let m = Matrix::diag(&[5.0, 3.0, 1.0]);
        let pairs = symmetric_topk(&m, 3, 300, 7);
        let mut eigs: Vec<f64> = pairs.iter().map(|(l, _)| *l).collect();
        eigs.sort_by(|a, b| b.total_cmp(a));
        assert!((eigs[0] - 5.0).abs() < 1e-6);
        assert!((eigs[1] - 3.0).abs() < 1e-6);
        assert!((eigs[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along y = 2x with small orthogonal jitter: first PC should
        // align with (1, 2)/sqrt(5).
        let mut rows = Vec::new();
        let mut rng_state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for i in 0..50 {
            let t = i as f64 / 5.0;
            rows.push([t + 0.01 * next(), 2.0 * t + 0.01 * next()]);
        }
        let data = Matrix::from_fn(50, 2, |i, j| rows[i][j]);
        let model = pca(&data, 1, 3);
        let axis = model.components.row(0);
        let expected = [1.0 / 5.0_f64.sqrt(), 2.0 / 5.0_f64.sqrt()];
        let dot = (axis[0] * expected[0] + axis[1] * expected[1]).abs();
        assert!(dot > 0.999, "axis {axis:?} not aligned, |dot|={dot}");
        assert!(model.explained_variance[0] > 1.0);
    }

    #[test]
    fn pca_transform_centers_data() {
        let data = Matrix::from_rows(&[&[1.0, 1.0], &[3.0, 3.0]]);
        let model = pca(&data, 1, 11);
        let scores = model.transform(&data);
        // Two symmetric points around the mean: scores are ±s.
        assert!((scores[(0, 0)] + scores[(1, 0)]).abs() < 1e-9);
        assert!(scores[(0, 0)].abs() > 0.5);
    }

    #[test]
    fn pca_deterministic_across_calls() {
        let data = Matrix::from_fn(20, 3, |i, j| ((i * 7 + j * 13) % 11) as f64);
        let a = pca(&data, 2, 99);
        let b = pca(&data, 2, 99);
        assert_eq!(a.components, b.components);
    }
}
