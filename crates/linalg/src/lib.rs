//! # ba-linalg
//!
//! Dense linear-algebra substrate for the BinarizedAttack reproduction.
//!
//! The attack (`ba-core`), the OddBall detector (`ba-oddball`) and the
//! representation-learning GAD systems (`ba-gad`) all need a small set of
//! numerical kernels: dense matrices with a cache-friendly blocked matmul,
//! Gaussian elimination, 2×2 closed-form solves for the OLS normal
//! equations, simple/weighted linear regression, and a power-iteration PCA
//! used to project node embeddings. No suitable crate is available offline,
//! so this crate implements them from scratch with `f64` throughout.
//!
//! ## Quick example
//!
//! ```
//! use ba_linalg::{Matrix, Vector};
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! let v = Vector::from(vec![1.0, 1.0]);
//! assert_eq!(a.matvec(&v).as_slice(), &[3.0, 7.0]);
//! ```

mod decomp;
mod matrix;
mod parallel;
mod regression;
mod solve;
mod stats;
mod vector;

pub use decomp::{pca, power_iteration, symmetric_topk, PcaModel};
pub use matrix::Matrix;
pub use parallel::par_matmul;
pub use regression::{simple_ols, weighted_ols, LinearFit, Ols2Error};
pub use solve::{inverse, solve, solve2, LinalgError};
pub use stats::{CompensatedSum, OlsStats};
pub use vector::Vector;

/// Numerical tolerance used by the crate's own tests and by callers that
/// want a consistent notion of "approximately equal".
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` differ by at most `tol` in absolute
/// terms or `tol` in relative terms (whichever is more permissive).
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_relative_large_magnitudes() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.01e12, 1e-9));
    }
}
