//! Compensated sufficient statistics for the two-parameter OLS fit.
//!
//! The incremental detector-refit engine in `ba-oddball` maintains the
//! normal-equation sums `Σu, Σv, Σu², Σuv` under per-row feature updates
//! (subtract the row's old contribution, add the new one). Plain `f64`
//! running sums drift under such add/remove histories — after a few
//! thousand updates the low bits no longer agree with a fresh
//! accumulation, which would break the engine's bit-identity contract
//! with the from-scratch fit. [`CompensatedSum`] therefore keeps every
//! sum as an unevaluated double-double pair `(hi, lo)` with error-free
//! `two_sum` renormalisation: each update is exact to ~106 significand
//! bits, so any add/remove history that reaches the same multiset of row
//! contributions rounds to the same `f64` as summing the rows in order.
//!
//! [`OlsStats`] packages the four sums plus the row count and solves the
//! 2×2 normal equations via [`solve2`](crate::solve2) — the same kernel
//! `simple_ols` and `ba-core`'s inlined `fit_beta` reduce to.

use crate::solve::LinalgError;
use crate::{solve2, Ols2Error};

/// Error-free transformation: returns `(s, e)` with `s = fl(a + b)` and
/// `a + b = s + e` exactly (Knuth's TwoSum, branch-free).
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// A running sum held as an unevaluated double-double `hi + lo`.
///
/// Adding a term costs two `two_sum`s (~7 flops) and keeps the
/// accumulated error at O(2⁻¹⁰⁶) relative — effectively exact for the
/// log-feature magnitudes the detector sums, and in particular exact
/// enough that subtracting a previously-added term restores the state a
/// fresh accumulation would reach.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompensatedSum {
    hi: f64,
    lo: f64,
}

impl CompensatedSum {
    /// The zero sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `x` to the sum.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let (s, e) = two_sum(self.hi, x);
        let lo = self.lo + e;
        let (hi, lo) = two_sum(s, lo);
        self.hi = hi;
        self.lo = lo;
    }

    /// Subtracts `x` from the sum (exact negation, so `sub(x)` after
    /// `add(x)` cancels the contribution).
    #[inline]
    pub fn sub(&mut self, x: f64) {
        self.add(-x);
    }

    /// The sum rounded to a single `f64`.
    #[inline]
    pub fn value(&self) -> f64 {
        self.hi + self.lo
    }
}

/// Sufficient statistics of the line fit `v = β0 + β1·u`: the row count
/// and the compensated sums `Σu, Σv, Σu², Σuv`.
///
/// Rows can be pushed, removed, or replaced; [`OlsStats::solve`] then
/// answers the normal equations in O(1), independent of how many rows
/// the fit covers. Products (`u·u`, `u·v`) are formed at update time, so
/// removing a row subtracts bit-identically what pushing it added.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OlsStats {
    n: usize,
    su: CompensatedSum,
    sv: CompensatedSum,
    suu: CompensatedSum,
    suv: CompensatedSum,
}

impl OlsStats {
    /// Empty statistics (no rows).
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates every `(u, v)` row in order — the from-scratch path.
    pub fn from_rows(u: &[f64], v: &[f64]) -> Self {
        assert_eq!(u.len(), v.len(), "row length mismatch");
        let mut stats = Self::new();
        for (&ui, &vi) in u.iter().zip(v) {
            stats.push(ui, vi);
        }
        stats
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no rows have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds one row.
    #[inline]
    pub fn push(&mut self, u: f64, v: f64) {
        self.n += 1;
        self.su.add(u);
        self.sv.add(v);
        self.suu.add(u * u);
        self.suv.add(u * v);
    }

    /// Removes one previously-pushed row.
    #[inline]
    pub fn remove(&mut self, u: f64, v: f64) {
        debug_assert!(self.n > 0, "remove from empty statistics");
        self.n -= 1;
        self.su.sub(u);
        self.sv.sub(v);
        self.suu.sub(u * u);
        self.suv.sub(u * v);
    }

    /// Replaces one row's contribution (`remove` + `push` with the row
    /// count unchanged) — the per-dirty-row update of the incremental
    /// refit engine.
    #[inline]
    pub fn replace(&mut self, old_u: f64, old_v: f64, new_u: f64, new_v: f64) {
        self.remove(old_u, old_v);
        self.push(new_u, new_v);
    }

    /// Solves the 2×2 normal equations for `(β0, β1)`.
    ///
    /// Errors mirror [`simple_ols`](crate::simple_ols): fewer than two
    /// rows is under-determined; all-equal `u` is singular.
    pub fn solve(&self) -> Result<(f64, f64), Ols2Error> {
        if self.n < 2 {
            return Err(Ols2Error::TooFewPoints);
        }
        let (su, sv) = (self.su.value(), self.sv.value());
        let (suu, suv) = (self.suu.value(), self.suv.value());
        solve2(self.n as f64, su, su, suu, sv, suv).map_err(|e| match e {
            LinalgError::Singular => Ols2Error::Degenerate,
            LinalgError::DimensionMismatch => Ols2Error::LengthMismatch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple_ols;

    #[test]
    fn matches_simple_ols_on_clean_data() {
        let u: Vec<f64> = (0..50).map(|i| (i as f64 / 7.0).ln_1p()).collect();
        let v: Vec<f64> = u.iter().map(|&x| 0.3 + 1.7 * x).collect();
        let (b0, b1) = OlsStats::from_rows(&u, &v).solve().unwrap();
        let fit = simple_ols(&u, &v).unwrap();
        assert!((b0 - fit.intercept).abs() < 1e-12);
        assert!((b1 - fit.slope).abs() < 1e-12);
    }

    #[test]
    fn replace_history_equals_fresh_accumulation() {
        // Churn many rows through replace() and compare against a fresh
        // accumulation of the final row set: the solved parameters must
        // agree bit-for-bit — the incremental engine's core contract.
        let mut u: Vec<f64> = (1..=200).map(|i| (i as f64).ln()).collect();
        let mut v: Vec<f64> = u.iter().map(|&x| 0.4 + 1.3 * x).collect();
        let mut stats = OlsStats::from_rows(&u, &v);
        let mut state: u64 = 0x9e3779b97f4a7c15;
        for _ in 0..5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (state >> 33) as usize % u.len();
            let nu = ((i as f64) + 2.0 + ((state >> 20) & 0xff) as f64).ln();
            let nv = 0.4 + 1.3 * nu + ((state & 0xf) as f64) * 1e-3;
            stats.replace(u[i], v[i], nu, nv);
            u[i] = nu;
            v[i] = nv;
        }
        let fresh = OlsStats::from_rows(&u, &v);
        let (b0a, b1a) = stats.solve().unwrap();
        let (b0b, b1b) = fresh.solve().unwrap();
        assert_eq!(b0a.to_bits(), b0b.to_bits());
        assert_eq!(b1a.to_bits(), b1b.to_bits());
    }

    #[test]
    fn push_then_remove_cancels() {
        let u = [0.1, 1.2, 2.3, 3.1];
        let v = [1.0, 2.2, 3.1, 4.4];
        let base = OlsStats::from_rows(&u, &v);
        let mut churned = base;
        churned.push(7.5, -2.25);
        churned.remove(7.5, -2.25);
        let (b0a, b1a) = base.solve().unwrap();
        let (b0b, b1b) = churned.solve().unwrap();
        assert_eq!(b0a.to_bits(), b0b.to_bits());
        assert_eq!(b1a.to_bits(), b1b.to_bits());
        assert_eq!(churned.len(), base.len());
    }

    #[test]
    fn compensation_beats_naive_summation() {
        // Large/small magnitude mix: a naive running sum loses the small
        // terms entirely; the compensated sum keeps them.
        let mut c = CompensatedSum::new();
        let mut naive = 0.0f64;
        c.add(1e16);
        naive += 1e16;
        for _ in 0..1000 {
            c.add(1.0);
            naive += 1.0;
        }
        c.sub(1e16);
        naive -= 1e16;
        assert_eq!(c.value(), 1000.0);
        assert_ne!(naive, 1000.0, "naive summation should have lost bits");
    }

    #[test]
    fn error_cases_mirror_simple_ols() {
        assert_eq!(OlsStats::new().solve(), Err(Ols2Error::TooFewPoints));
        let mut one = OlsStats::new();
        one.push(1.0, 2.0);
        assert_eq!(one.solve(), Err(Ols2Error::TooFewPoints));
        let degenerate = OlsStats::from_rows(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert_eq!(degenerate.solve(), Err(Ols2Error::Degenerate));
    }

    #[test]
    fn empty_len_tracking() {
        let mut s = OlsStats::new();
        assert!(s.is_empty());
        s.push(1.0, 1.0);
        assert_eq!(s.len(), 1);
        s.remove(1.0, 1.0);
        assert!(s.is_empty());
    }
}
