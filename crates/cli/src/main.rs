//! `binattack` — command-line interface to the BinarizedAttack library.
//!
//! Subcommands:
//!
//! * `generate` — build a synthetic dataset and save it as an edge list
//! * `gen-large` — stream a million-node-scale graph straight into a
//!   chunked on-disk CSR store (never materialises an edge list)
//! * `score` — run OddBall on an edge list and print the top anomalies
//! * `attack` — poison an edge list so given targets evade OddBall
//! * `transfer` — run the GAL/ReFeX transfer-attack pipeline end to end
//! * `gen-stream` — derive a synthetic edge-event stream from a graph
//! * `stream` — feed an event stream through the online scoring engine
//! * `serve` — run the epoch-snapshot anomaly-scoring TCP server
//! * `gen-requests` — derive a deterministic served-traffic request log
//! * `client` — replay a request log and print the response transcript
//! * `exp` — run a named experiment suite with the in-process runner
//! * `tracker` — coordinate a distributed suite run (optionally
//!   spawning a localhost peer fleet)
//! * `peer` — join a tracker as a cell-computing worker
//!
//! Run `binattack help` for usage. Argument parsing is hand-rolled (the
//! approved dependency set has no CLI parser; the grammar is small).
//!
//! `stream` output on stdout is **deterministic**: a pure function of
//! the graph, the event file, and the batch size — never of `--shards`
//! or of a snapshot/`--resume` cut. The CI determinism job diffs these
//! bytes across shard counts. `client` transcripts are likewise pure
//! functions of (server graph, request log) — never of `--clients` —
//! and the CI serve-replay step diffs them across client counts.

use ba_core::{
    AttackConfig, AttackOutcome, BinarizedAttack, ContinuousA, EdgeOpKind, GradMaxSearch,
    RandomAttack, StructuralAttack,
};
use ba_datasets::Dataset;
use ba_graph::io::{load_edge_list, save_edge_list};
use ba_graph::{CsrGraph, DeltaOverlay, EditableGraph, Graph, NodeId};
use ba_oddball::{OddBall, Regressor};
use std::process::ExitCode;

const USAGE: &str = "\
binattack — structural poisoning attacks on graph anomaly detection

USAGE:
  binattack generate --dataset <er|ba|blogcatalog|wikivote|bitcoin-alpha>
                     --out <file> [--seed N]
  binattack gen-large --out <dir> [--model <ba|er>] [--nodes N]
                     [--m M | --p P] [--chunk-rows R] [--seed N]
  binattack score    --graph <file> [--top K] [--regressor <ols|huber|ransac>]
  binattack attack   --graph <file> --out <file> --budget B
                     [--targets a,b,c | --auto-targets K]
                     [--method <binarized|gradmax|continuous|random>]
                     [--ops <both|add|delete>] [--seed N] [--no-memo]
  binattack transfer --graph <file> --budget B --system <gal|refex> [--seed N]
  binattack gen-stream --graph <file> --out <file> --events N [--seed N]
  binattack stream   --graph <file> --events <file> [--batch N] [--shards S]
                     [--top K] [--regressor <ols|huber|ransac>] [--seed N]
                     [--compact-frac F] [--snapshot <file>] [--resume]
  binattack serve    --graph <file> --addr HOST:PORT [--retain N] [--shards S]
                     [--regressor <ols|huber|ransac>] [--seed N]
  binattack gen-requests --graph <file> --out <file> [--batches B]
                     [--batch-size S] [--queries Q] [--topk K] [--seed N]
  binattack client   --addr HOST:PORT --requests <file> [--clients N]
  binattack exp      --exp <fig4|fig5|fig6|table3|table4|all|det>
                     [--out DIR] [--seed N] [--samples N] [--paper]
                     [--threads N] [--resume]
  binattack tracker  --exp NAME --addr HOST:PORT [--peers N]
                     [--kill-peer NAME] [--lease-ms MS] [--out DIR]
                     [--seed N] [--samples N] [--paper] [--resume]
  binattack peer     --exp NAME --addr HOST:PORT [--name NAME]
                     [--seed N] [--samples N] [--paper]
  binattack help
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = Flags::parse(&args[1..]);
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "gen-large" => cmd_gen_large(&flags),
        "score" => cmd_score(&flags),
        "attack" => cmd_attack(&flags),
        "transfer" => cmd_transfer(&flags),
        "gen-stream" => cmd_gen_stream(&flags),
        "stream" => cmd_stream(&flags),
        "serve" => cmd_serve(&flags),
        "gen-requests" => cmd_gen_requests(&flags),
        "client" => cmd_client(&flags),
        "exp" => cmd_exp(&flags),
        "tracker" => cmd_tracker(&flags),
        "peer" => cmd_peer(&flags),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal `--key value` flag map.
struct Flags(std::collections::BTreeMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut map = std::collections::BTreeMap::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(key) = args[i].strip_prefix("--") {
                // A following `--flag` means this one is boolean-valued
                // (e.g. `--resume --snapshot s.snap` must not swallow
                // `--snapshot` as the resume value).
                let value = match args.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        i += 1;
                        next.clone()
                    }
                    _ => String::new(),
                };
                map.insert(key.to_string(), value);
            }
            i += 1;
        }
        Flags(map)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn has(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    fn u64_or(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    fn usize_or(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }

    fn f64_or(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    }
}

fn parse_regressor(flags: &Flags) -> Result<Regressor, String> {
    match flags.get("regressor").unwrap_or("ols") {
        "ols" => Ok(Regressor::Ols),
        "huber" => Ok(Regressor::default_huber()),
        "ransac" => Ok(Regressor::default_ransac(flags.u64_or("seed", 7))),
        other => Err(format!("unknown regressor {other:?}")),
    }
}

fn load_graph(flags: &Flags) -> Result<Graph, String> {
    let path = flags.require("graph")?;
    let loaded = load_edge_list(path).map_err(|e| format!("loading {path}: {e}"))?;
    Ok(loaded.graph)
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let name = flags.require("dataset")?;
    let dataset = match name {
        "er" => Dataset::Er,
        "ba" => Dataset::Ba,
        "blogcatalog" => Dataset::Blogcatalog,
        "wikivote" => Dataset::Wikivote,
        "bitcoin-alpha" => Dataset::BitcoinAlpha,
        other => return Err(format!("unknown dataset {other:?}")),
    };
    let out = flags.require("out")?;
    let seed = flags.u64_or("seed", 7);
    let g = dataset.build(seed);
    save_edge_list(&g, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nodes, {} edges, seed {seed})",
        out,
        g.num_nodes(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_gen_large(flags: &Flags) -> Result<(), String> {
    use ba_bench::graphstore;
    use ba_graph::compact::from_edge_stream;
    use ba_graph::generators::{barabasi_albert_stream, erdos_renyi_stream};

    let out = flags.require("out")?;
    let n = flags.usize_or("nodes", 1_000_000);
    let seed = flags.u64_or("seed", 7);
    let chunk_rows = flags.usize_or("chunk-rows", 65_536).max(1);
    // Streamed generation: the restartable edge stream feeds the
    // two-pass u32 CSR builder, so peak memory is the final CSR plus
    // the generator's own state — no intermediate edge list. The
    // result is bit-identical to the in-memory generators at equal
    // (model, n, seed); see DESIGN.md §13.
    let t0 = std::time::Instant::now();
    let g = match flags.get("model").unwrap_or("ba") {
        "ba" => {
            let m = flags.usize_or("m", 11);
            from_edge_stream(n, || barabasi_albert_stream(n, m, seed))
        }
        "er" => {
            let p = flags.f64_or("p", 2e-5);
            from_edge_stream(n, || erdos_renyi_stream(n, p, seed))
        }
        other => return Err(format!("unknown model {other:?}")),
    }
    .map_err(|e| format!("building CSR: {e}"))?;
    let gen_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    let meta = graphstore::write_chunked(std::path::Path::new(out), &g, chunk_rows)
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} nodes, {} edges, {} chunks of {} rows, hash {:016x} (gen {gen_s:.2}s, store {:.2}s, seed {seed})",
        meta.num_nodes,
        meta.num_edges,
        meta.num_chunks,
        meta.chunk_rows,
        g.edge_hash(),
        t1.elapsed().as_secs_f64()
    );
    Ok(())
}

fn cmd_score(flags: &Flags) -> Result<(), String> {
    let g = load_graph(flags)?;
    let top = flags.usize_or("top", 20);
    let regressor = match flags.get("regressor").unwrap_or("ols") {
        "ols" => Regressor::Ols,
        "huber" => Regressor::default_huber(),
        "ransac" => Regressor::default_ransac(flags.u64_or("seed", 7)),
        other => return Err(format!("unknown regressor {other:?}")),
    };
    let model = OddBall::new(regressor).fit(&g).map_err(|e| e.to_string())?;
    println!(
        "fit: beta0 = {:.4}, beta1 = {:.4}  (n = {}, m = {})",
        model.beta0(),
        model.beta1(),
        g.num_nodes(),
        g.num_edges()
    );
    println!("{:>8}  {:>10}  {:>6}  {:>6}", "node", "ascore", "N", "E");
    for (node, score) in model.top_k(top) {
        let f = model.features();
        println!(
            "{:>8}  {:>10.4}  {:>6.0}  {:>6.0}",
            node, score, f.n[node as usize], f.e[node as usize]
        );
    }
    Ok(())
}

fn cmd_attack(flags: &Flags) -> Result<(), String> {
    let g = load_graph(flags)?;
    let out = flags.require("out")?;
    let budget = flags.usize_or("budget", 10);
    let seed = flags.u64_or("seed", 7);
    let targets: Vec<NodeId> = if let Some(list) = flags.get("targets") {
        list.split(',')
            .map(|t| t.trim().parse().map_err(|_| format!("bad target id {t:?}")))
            .collect::<Result<_, _>>()?
    } else {
        let k = flags.usize_or("auto-targets", 10);
        let model = OddBall::default().fit(&g).map_err(|e| e.to_string())?;
        model.top_k(k).into_iter().map(|(i, _)| i).collect()
    };
    let op_kind = match flags.get("ops").unwrap_or("both") {
        "both" => EdgeOpKind::Both,
        "add" => EdgeOpKind::AddOnly,
        "delete" => EdgeOpKind::DeleteOnly,
        other => return Err(format!("unknown ops mode {other:?}")),
    };
    let cfg = AttackConfig {
        op_kind,
        seed,
        ..AttackConfig::default()
    };
    // One frozen CSR substrate serves the attack session and the
    // before/after scoring below. Search memoization is on by default
    // (it is result-transparent); `--no-memo` disables it to trade
    // wall-clock for memory.
    let csr = CsrGraph::from(&g);
    let mut session = ba_core::AttackSession::new(&csr, &targets).map_err(|e| e.to_string())?;
    if !flags.has("no-memo") {
        session = session.with_memo();
    }
    let method = flags.get("method").unwrap_or("binarized");
    let outcome: AttackOutcome = match method {
        "binarized" => BinarizedAttack::new(cfg).attack_with_session(&mut session, budget),
        "gradmax" => GradMaxSearch::new(cfg).attack_with_session(&mut session, budget),
        "continuous" => ContinuousA::new(cfg).attack_with_session(&mut session, budget),
        "random" => RandomAttack::new(cfg).attack_with_session(&mut session, budget),
        other => return Err(format!("unknown method {other:?}")),
    }
    .map_err(|e| e.to_string())?;

    let b = outcome.max_budget();
    // Score the before/after pair through one frozen CSR substrate: the
    // poisoned graph is just a delta overlay, so the detector refits
    // without a second adjacency build.
    let mut poisoned_view = DeltaOverlay::new(&csr);
    poisoned_view.apply_ops(outcome.ops(b));
    // Persist the attack result before scoring: a degenerate refit must
    // not lose the poisoned graph the user asked for.
    save_edge_list(&poisoned_view.to_graph(), out).map_err(|e| e.to_string())?;
    let before = OddBall::default().fit(&csr).map_err(|e| e.to_string())?;
    let after = OddBall::default()
        .fit(&poisoned_view)
        .map_err(|e| e.to_string())?;
    let s0 = before.target_score_sum(&targets);
    let sb = after.target_score_sum(&targets);
    println!("method: {}   targets: {:?}", outcome.name, targets);
    println!(
        "applied {} edge flips (budget {budget})",
        outcome.ops(b).len()
    );
    println!(
        "target AScore sum: {s0:.4} -> {sb:.4}  (tau_as = {:.2}%)",
        100.0 * (s0 - sb) / s0.max(1e-12)
    );
    println!("wrote poisoned graph to {out}");
    Ok(())
}

fn cmd_gen_stream(flags: &Flags) -> Result<(), String> {
    use ba_stream::{save_events, synthetic_stream};
    let g = load_graph(flags)?;
    let out = flags.require("out")?;
    let count = flags.usize_or("events", 1000);
    let seed = flags.u64_or("seed", 7);
    let events = synthetic_stream(&g, count, seed);
    save_events(&events, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {count} events to {out} (graph: {} nodes, {} edges, seed {seed})",
        g.num_nodes(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_stream(flags: &Flags) -> Result<(), String> {
    use ba_stream::snapshot::enc_f64;
    use ba_stream::{load_events, StreamConfig, StreamEngine};

    let events_path = flags.require("events")?;
    let events = load_events(events_path).map_err(|e| format!("loading {events_path}: {e}"))?;
    let batch_size = flags.usize_or("batch", 100).max(1);
    let top = flags.usize_or("top", 5);
    let cfg = StreamConfig {
        shards: flags.usize_or("shards", 0),
        compact_fraction: flags.f64_or("compact-frac", 0.125),
        regressor: parse_regressor(flags)?,
    };
    let snapshot = flags.get("snapshot");

    // `--resume` restores the engine from the snapshot and replays only
    // the remaining batches; the skipped batches' summaries are *not*
    // re-printed, so output byte-identity holds for the printed suffix.
    let mut engine = match snapshot {
        Some(path) if flags.has("resume") && std::path::Path::new(path).exists() => {
            let engine = StreamEngine::restore_snapshot(path, cfg.shards)
                .map_err(|e| format!("restoring {path}: {e}"))?;
            eprintln!(
                "[stream] resumed from {path}: {} batches / {} events already ingested",
                engine.batches_ingested(),
                engine.events_ingested()
            );
            engine
        }
        _ => StreamEngine::new(&load_graph(flags)?, cfg),
    };
    // Skip by *event count*, not batch count: the snapshot does not
    // record the original `--batch`, so counting batches would silently
    // drop or re-ingest events if the resumed run passes a different
    // size. The engine counts every presented event (including ignored
    // ones), so its counter maps exactly to a file position.
    let skip_events = (engine.events_ingested() as usize).min(events.len());
    let already_ingested = engine.events_ingested();

    let t0 = std::time::Instant::now();
    for batch in events[skip_events..].chunks(batch_size) {
        let summary = engine.ingest_batch(batch);
        let fit = match &summary.params {
            Ok(p) => format!(
                "beta0={:.6}({}) beta1={:.6}({})",
                p.beta0,
                enc_f64(p.beta0),
                p.beta1,
                enc_f64(p.beta1)
            ),
            Err(reason) => format!("degenerate({reason})"),
        };
        println!(
            "batch {}: events={} applied={} moved={} edges={} compacted={} {fit}",
            summary.batch,
            summary.events,
            summary.applied,
            summary.dirty_rows,
            summary.edges,
            u8::from(summary.compacted),
        );
        if summary.params.is_ok() {
            for (rank, (node, score)) in engine.top_k(top).expect("fit is ok").iter().enumerate() {
                println!(
                    "  top{}: node={node} score={score:.6} ({})",
                    rank + 1,
                    enc_f64(*score)
                );
            }
        }
        if let Some(path) = snapshot {
            engine
                .save_snapshot(path)
                .map_err(|e| format!("saving snapshot {path}: {e}"))?;
        }
    }
    let ingested = engine.events_ingested() - already_ingested;
    eprintln!(
        "[stream] {ingested} events in {:.3}s ({:.0} events/s sustained)",
        t0.elapsed().as_secs_f64(),
        ingested as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    );
    println!(
        "stream done: batches={} events={} edges={} compactions={} dirty={}",
        engine.batches_ingested(),
        engine.events_ingested(),
        engine.num_edges(),
        engine.compactions(),
        engine.dirty_rows()
    );
    Ok(())
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    use ba_serve::{ServeConfig, Server};
    use ba_stream::{StreamConfig, StreamEngine};

    let g = load_graph(flags)?;
    let addr = flags.require("addr")?;
    let cfg = StreamConfig {
        shards: flags.usize_or("shards", 0),
        regressor: parse_regressor(flags)?,
        ..StreamConfig::default()
    };
    let serve_cfg = ServeConfig {
        retain: flags.usize_or("retain", ServeConfig::default().retain),
    };
    let engine = StreamEngine::new(&g, cfg);
    let server =
        Server::start(addr, engine, serve_cfg).map_err(|e| format!("binding {addr}: {e}"))?;
    // Readiness line on stderr: scripts (and the CI replay step) can
    // wait for it before connecting.
    eprintln!(
        "[serve] listening on {} ({} nodes, {} edges, retain {})",
        server.local_addr(),
        g.num_nodes(),
        g.num_edges(),
        serve_cfg.retain
    );
    server.run();
    Ok(())
}

fn cmd_gen_requests(flags: &Flags) -> Result<(), String> {
    use ba_serve::{save_requests, synthetic_requests, WorkloadConfig};

    let g = load_graph(flags)?;
    let out = flags.require("out")?;
    let defaults = WorkloadConfig::default();
    let cfg = WorkloadConfig {
        batches: flags.usize_or("batches", defaults.batches),
        batch_size: flags.usize_or("batch-size", defaults.batch_size),
        queries_per_batch: flags.usize_or("queries", defaults.queries_per_batch),
        top_k: flags.u64_or("topk", defaults.top_k as u64) as u32,
        seed: flags.u64_or("seed", defaults.seed),
    };
    let requests = synthetic_requests(&g, &cfg);
    save_requests(&requests, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} requests to {out} ({} ingest batches, seed {})",
        requests.len(),
        cfg.batches,
        cfg.seed
    );
    Ok(())
}

fn cmd_client(flags: &Flags) -> Result<(), String> {
    use ba_serve::{format_request, load_requests, render_response, replay};

    let addr = flags.require("addr")?;
    let path = flags.require("requests")?;
    let clients = flags.usize_or("clients", 1).max(1);
    let requests = load_requests(path).map_err(|e| format!("loading {path}: {e}"))?;
    let t0 = std::time::Instant::now();
    let responses = replay(addr, &requests, clients).map_err(|e| e.to_string())?;
    // The transcript on stdout is the determinism artifact: a pure
    // function of (server graph, request log), never of --clients.
    for (req, resp) in requests.iter().zip(&responses) {
        println!("{} => {}", format_request(req), render_response(resp));
    }
    eprintln!(
        "[client] {} requests over {clients} connection(s) in {:.3}s",
        requests.len(),
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

/// Experiment options from the CLI flag map — same flag names and
/// defaults as `ExpOptions::from_args`, but sourced from the already
/// parsed subcommand flags.
fn exp_options(flags: &Flags) -> ba_bench::ExpOptions {
    let mut opts = ba_bench::ExpOptions::default();
    if flags.has("paper") {
        opts.paper = true;
        opts.samples = 5;
    }
    opts.seed = flags.u64_or("seed", opts.seed);
    opts.samples = flags.usize_or("samples", opts.samples);
    if let Some(dir) = flags.get("out") {
        opts.out_dir = std::path::PathBuf::from(dir);
    }
    opts.threads = flags.usize_or("threads", opts.threads);
    opts.resume = flags.has("resume");
    opts
}

/// Builds the named suite, with a helpful error naming the registry.
fn named_suite(
    flags: &Flags,
    opts: &ba_bench::ExpOptions,
) -> Result<Vec<Box<dyn ba_bench::runner::Experiment>>, String> {
    let name = flags.require("exp")?;
    ba_bench::distrib::suite_by_name(name, opts).ok_or_else(|| {
        format!(
            "unknown suite {name:?} (known: {})",
            ba_bench::distrib::SUITE_NAMES.join(", ")
        )
    })
}

fn cmd_exp(flags: &Flags) -> Result<(), String> {
    let opts = exp_options(flags);
    let suite = named_suite(flags, &opts)?;
    let refs: Vec<&dyn ba_bench::runner::Experiment> = suite.iter().map(|e| e.as_ref()).collect();
    ba_bench::runner::ExperimentRunner::new(&opts)
        .run_suite(&refs, &opts)
        .map_err(|e| e.to_string())
}

fn cmd_tracker(flags: &Flags) -> Result<(), String> {
    use ba_bench::distrib::{FirstLeaseHook, Tracker, TrackerConfig};
    use std::sync::{Arc, Mutex};

    let opts = exp_options(flags);
    let suite = named_suite(flags, &opts)?;
    let refs: Vec<&dyn ba_bench::runner::Experiment> = suite.iter().map(|e| e.as_ref()).collect();
    let cfg = TrackerConfig {
        lease_ms: flags.u64_or("lease-ms", TrackerConfig::default().lease_ms),
        kill_peer: flags.get("kill-peer").map(str::to_string),
        ..TrackerConfig::default()
    };

    let addr = flags.require("addr")?;
    let tracker = Tracker::bind(addr).map_err(|e| format!("binding {addr}: {e}"))?;
    let local = tracker.local_addr().to_string();

    // Localhost fleet mode: spawn `--peers N` copies of this binary as
    // worker processes against the resolved address.
    let peers = flags.usize_or("peers", 0);
    let children: Arc<Mutex<Vec<(String, std::process::Child)>>> = Arc::new(Mutex::new(Vec::new()));
    let exe = std::env::current_exe().map_err(|e| format!("current exe: {e}"))?;
    let exp_name = flags.require("exp")?;
    for k in 0..peers {
        let peer_name = format!("peer-{k}");
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("peer")
            .arg("--exp")
            .arg(exp_name)
            .arg("--addr")
            .arg(&local)
            .arg("--name")
            .arg(&peer_name)
            .arg("--seed")
            .arg(opts.seed.to_string())
            .arg("--samples")
            .arg(opts.samples.to_string());
        if opts.paper {
            cmd.arg("--paper");
        }
        let child = cmd
            .spawn()
            .map_err(|e| format!("spawning {peer_name}: {e}"))?;
        eprintln!("[tracker] spawned {peer_name} (pid {})", child.id());
        children.lock().expect("children").push((peer_name, child));
    }

    // Fault injection: kill the named spawned child the moment its
    // first lease frame is on the wire — provably mid-cell.
    let hook: Option<FirstLeaseHook> = match (&cfg.kill_peer, peers) {
        (Some(_), n) if n > 0 => {
            let children = Arc::clone(&children);
            Some(Box::new(move |victim: &str| {
                let mut children = children.lock().expect("children");
                for (name, child) in children.iter_mut() {
                    if name == victim {
                        let _ = child.kill();
                    }
                }
            }))
        }
        _ => None,
    };

    let report = tracker
        .serve_with_hook(&refs, &opts, &cfg, hook)
        .map_err(|e| format!("tracker run failed: {e}"))?;

    // Reap the fleet. The injected-kill victim's failure is expected;
    // any other worker failing means the run was not healthy.
    let mut children = children.lock().expect("children");
    for (name, child) in children.iter_mut() {
        let status = child
            .wait()
            .map_err(|e| format!("waiting on {name}: {e}"))?;
        let killed = cfg.kill_peer.as_deref() == Some(name.as_str());
        if !status.success() && !killed {
            return Err(format!("worker {name} exited with {status}"));
        }
    }
    if !report.all_ok {
        return Err("one or more experiments failed to finalize".into());
    }
    Ok(())
}

fn cmd_peer(flags: &Flags) -> Result<(), String> {
    use ba_bench::distrib::{run_peer, PeerConfig};

    let opts = exp_options(flags);
    let suite = named_suite(flags, &opts)?;
    let refs: Vec<&dyn ba_bench::runner::Experiment> = suite.iter().map(|e| e.as_ref()).collect();
    let addr = flags.require("addr")?;
    let cfg = PeerConfig::new(addr, flags.get("name").unwrap_or("peer"));
    run_peer(&refs, &opts, &cfg).map_err(|e| e.to_string())?;
    Ok(())
}

fn cmd_transfer(flags: &Flags) -> Result<(), String> {
    use ba_gad::{
        evaluate_system, identify_targets, pipeline::delta_b, pipeline::oddball_labels,
        train_test_split, GadSystem, GalConfig, RefexConfig, TransferConfig,
    };
    let g = load_graph(flags)?;
    let budget = flags.usize_or("budget", 50);
    let seed = flags.u64_or("seed", 7);
    let system = match flags.require("system")? {
        "gal" => GadSystem::Gal(GalConfig::default()),
        "refex" => GadSystem::Refex(RefexConfig::default()),
        other => return Err(format!("unknown system {other:?}")),
    };
    let tcfg = TransferConfig {
        seed,
        ..TransferConfig::default()
    };
    let labels = oddball_labels(&g, tcfg.label_fraction);
    let (train, test) = train_test_split(g.num_nodes(), tcfg.train_fraction, seed);
    let (targets, clean) = identify_targets(&system, &g, &labels, &train, &test, &tcfg);
    println!(
        "{}: clean AUC {:.3}, F1 {:.3}, {} identified targets",
        system.name(),
        clean.auc,
        clean.f1,
        targets.len()
    );
    if targets.is_empty() {
        return Err("no anomalous test nodes identified; nothing to attack".into());
    }
    let attack = BinarizedAttack::new(AttackConfig {
        seed,
        ..AttackConfig::default()
    });
    let outcome = attack
        .attack(&g, &targets, budget)
        .map_err(|e| e.to_string())?;
    let poisoned = outcome.poisoned_graph(&g, budget);
    let after = evaluate_system(&system, &poisoned, &labels, &train, &test, &targets, &tcfg);
    println!(
        "after B = {budget}: AUC {:.3}, F1 {:.3}, delta_B = {:.1}%",
        after.auc,
        after.f1,
        100.0 * delta_b(clean.target_soft_sum, after.target_soft_sum)
    );
    Ok(())
}
