//! Process-level fault-injection harness for `binattack tracker` /
//! `binattack peer` / `binattack exp`, driving the real binary via
//! `CARGO_BIN_EXE_binattack`:
//!
//! * a localhost fleet (`--peers 2`) with `--kill-peer peer-0` — a
//!   worker *process* dies while holding a lease — must re-lease the
//!   orphaned cell and still merge CSV and cell record files
//!   byte-identical to `exp --threads 1`;
//! * an externally-launched peer process against a `--peers 0` tracker,
//!   with a raw connection severed mid-frame thrown in, must do the
//!   same.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_binattack");
/// Cells in the `det` suite (`Fig4Experiment::tiny`): 2 panels × 3
/// methods × 2 samples.
const DET_CELLS: usize = 12;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ba_cli_distrib").join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// CSV plus every cell record file of the `det` suite, in index order.
fn det_artifacts(dir: &Path) -> (Vec<u8>, Vec<Vec<u8>>) {
    let csv = std::fs::read(dir.join("det.csv")).expect("det.csv");
    let cells = (0..DET_CELLS)
        .map(|c| {
            std::fs::read(
                dir.join(".cells")
                    .join("det")
                    .join(format!("cell_{c:04}.rows")),
            )
            .unwrap_or_else(|e| panic!("cell {c} missing: {e}"))
        })
        .collect();
    (csv, cells)
}

fn reference(dir: &Path) -> (Vec<u8>, Vec<Vec<u8>>) {
    let out = Command::new(BIN)
        .args(["exp", "--exp", "det", "--threads", "1", "--seed", "42"])
        .arg("--out")
        .arg(dir)
        .output()
        .expect("run exp");
    assert!(
        out.status.success(),
        "exp failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    det_artifacts(dir)
}

#[test]
fn spawned_fleet_with_killed_worker_matches_single_process() {
    let ref_dir = fresh_dir("kill_ref");
    let expected = reference(&ref_dir);

    let fleet_dir = fresh_dir("kill_fleet");
    let out = Command::new(BIN)
        .args([
            "tracker",
            "--exp",
            "det",
            "--addr",
            "127.0.0.1:0",
            "--peers",
            "2",
            "--kill-peer",
            "peer-0",
            "--seed",
            "42",
        ])
        .arg("--out")
        .arg(&fleet_dir)
        .output()
        .expect("run tracker");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "tracker failed:\n{stderr}");
    assert!(
        stderr.contains("injected kill of peer-0"),
        "kill was not injected:\n{stderr}"
    );
    assert!(
        stderr.contains("re-leasing"),
        "killed worker's lease was not re-leased:\n{stderr}"
    );

    let got = det_artifacts(&fleet_dir);
    assert_eq!(
        got.0, expected.0,
        "fleet CSV differs from single-process run"
    );
    assert_eq!(
        got.1, expected.1,
        "fleet cell record files differ from single-process run"
    );
}

#[test]
fn external_peer_process_with_severed_connection_matches_single_process() {
    let ref_dir = fresh_dir("ext_ref");
    let expected = reference(&ref_dir);

    // Tracker with no spawned workers: peers join from outside.
    let fleet_dir = fresh_dir("ext_fleet");
    let mut tracker = Command::new(BIN)
        .args([
            "tracker",
            "--exp",
            "det",
            "--addr",
            "127.0.0.1:0",
            "--seed",
            "42",
        ])
        .arg("--out")
        .arg(&fleet_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn tracker");

    // The readiness line carries the resolved port.
    let mut tracker_err = BufReader::new(tracker.stderr.take().expect("tracker stderr"));
    let addr = loop {
        let mut line = String::new();
        assert!(
            tracker_err.read_line(&mut line).expect("read stderr") > 0,
            "tracker exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("[tracker] listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("addr token")
                .to_string();
        }
    };
    // Keep draining so the tracker never blocks on a full pipe.
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut tracker_err, &mut rest).expect("drain stderr");
        rest
    });

    // A raw connection promises 64 bytes, delivers half, and hangs up
    // mid-frame. The tracker must carry on serving real peers.
    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    raw.write_all(&64u64.to_le_bytes()).unwrap();
    raw.write_all(b"severed mid-frame").unwrap();
    drop(raw);

    let peer = Command::new(BIN)
        .args([
            "peer", "--exp", "det", "--addr", &addr, "--name", "ext-0", "--seed", "42",
        ])
        .output()
        .expect("run peer");
    assert!(
        peer.status.success(),
        "peer failed:\n{}",
        String::from_utf8_lossy(&peer.stderr)
    );

    let status = tracker.wait().expect("wait tracker");
    let stderr = drain.join().expect("stderr drained");
    assert!(status.success(), "tracker failed:\n{stderr}");

    let got = det_artifacts(&fleet_dir);
    assert_eq!(
        got.0, expected.0,
        "external-peer CSV differs from single-process run"
    );
    assert_eq!(
        got.1, expected.1,
        "external-peer cell record files differ from single-process run"
    );
}
