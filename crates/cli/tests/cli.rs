//! Integration tests for the `binattack` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn binattack() -> Command {
    Command::new(env!("CARGO_BIN_EXE_binattack"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("binattack_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn help_prints_usage() {
    let out = binattack().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("binattack attack"));
}

#[test]
fn unknown_command_fails() {
    let out = binattack().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn missing_required_flag_fails() {
    let out = binattack()
        .args(["generate", "--dataset", "er"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--out"));
}

#[test]
fn generate_then_score() {
    let path = tmp("gen_score.edges");
    let out = binattack()
        .args([
            "generate",
            "--dataset",
            "ba",
            "--out",
            path.to_str().unwrap(),
            "--seed",
            "3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(path.exists());

    let out = binattack()
        .args(["score", "--graph", path.to_str().unwrap(), "--top", "5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("beta0"));
    // 5 ranked rows follow the header.
    assert!(text.lines().count() >= 7);
}

#[test]
fn generate_rejects_unknown_dataset() {
    let out = binattack()
        .args(["generate", "--dataset", "nonsense", "--out", "/tmp/x.edges"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn attack_reduces_scores_end_to_end() {
    let clean = tmp("attack_in.edges");
    let poisoned = tmp("attack_out.edges");
    let status = binattack()
        .args([
            "generate",
            "--dataset",
            "bitcoin-alpha",
            "--out",
            clean.to_str().unwrap(),
            "--seed",
            "5",
        ])
        .status()
        .unwrap();
    assert!(status.success());

    // Use the fast greedy method to keep the test quick.
    let out = binattack()
        .args([
            "attack",
            "--graph",
            clean.to_str().unwrap(),
            "--out",
            poisoned.to_str().unwrap(),
            "--budget",
            "10",
            "--auto-targets",
            "3",
            "--method",
            "gradmax",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tau_as"));
    assert!(poisoned.exists());
    // The reported decrease must be positive.
    let tau_line = text.lines().find(|l| l.contains("tau_as")).unwrap();
    let pct: f64 = tau_line
        .split("tau_as = ")
        .nth(1)
        .unwrap()
        .trim_end_matches(['%', ')'])
        .parse()
        .unwrap();
    assert!(pct > 0.0, "reported tau_as {pct} not positive: {tau_line}");
}

#[test]
fn attack_with_explicit_targets_and_ops_mode() {
    let clean = tmp("explicit_in.edges");
    let poisoned = tmp("explicit_out.edges");
    binattack()
        .args([
            "generate",
            "--dataset",
            "er",
            "--out",
            clean.to_str().unwrap(),
            "--seed",
            "9",
        ])
        .status()
        .unwrap();
    let out = binattack()
        .args([
            "attack",
            "--graph",
            clean.to_str().unwrap(),
            "--out",
            poisoned.to_str().unwrap(),
            "--budget",
            "5",
            "--targets",
            "1,2,3",
            "--method",
            "random",
            "--ops",
            "add",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[1, 2, 3]"));
}

/// Fast CI smoke test: the full generate → score → attack round-trip on
/// a small Erdős–Rényi graph, cheap enough to run on every push. Uses
/// the greedy method and a small budget so the whole chain stays well
/// under a few seconds even on cold CI runners.
#[test]
fn smoke_er_generate_score_attack_roundtrip() {
    let clean = tmp("smoke_er.edges");
    let poisoned = tmp("smoke_er_poisoned.edges");

    let out = binattack()
        .args([
            "generate",
            "--dataset",
            "er",
            "--out",
            clean.to_str().unwrap(),
            "--seed",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = binattack()
        .args(["score", "--graph", clean.to_str().unwrap(), "--top", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = binattack()
        .args([
            "attack",
            "--graph",
            clean.to_str().unwrap(),
            "--out",
            poisoned.to_str().unwrap(),
            "--budget",
            "5",
            "--auto-targets",
            "2",
            "--method",
            "gradmax",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(poisoned.exists());

    // The poisoned graph must still be a readable edge list.
    let out = binattack()
        .args(["score", "--graph", poisoned.to_str().unwrap(), "--top", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn score_on_missing_file_fails_gracefully() {
    let out = binattack()
        .args(["score", "--graph", "/definitely/not/here.edges"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"));
}
