//! Integration tests for the `binattack` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn binattack() -> Command {
    Command::new(env!("CARGO_BIN_EXE_binattack"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("binattack_cli_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn help_prints_usage() {
    let out = binattack().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("binattack attack"));
}

#[test]
fn unknown_command_fails() {
    let out = binattack().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
}

#[test]
fn missing_required_flag_fails() {
    let out = binattack()
        .args(["generate", "--dataset", "er"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--out"));
}

#[test]
fn generate_then_score() {
    let path = tmp("gen_score.edges");
    let out = binattack()
        .args([
            "generate",
            "--dataset",
            "ba",
            "--out",
            path.to_str().unwrap(),
            "--seed",
            "3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(path.exists());

    let out = binattack()
        .args(["score", "--graph", path.to_str().unwrap(), "--top", "5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("beta0"));
    // 5 ranked rows follow the header.
    assert!(text.lines().count() >= 7);
}

#[test]
fn generate_rejects_unknown_dataset() {
    let out = binattack()
        .args(["generate", "--dataset", "nonsense", "--out", "/tmp/x.edges"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn attack_reduces_scores_end_to_end() {
    let clean = tmp("attack_in.edges");
    let poisoned = tmp("attack_out.edges");
    let status = binattack()
        .args([
            "generate",
            "--dataset",
            "bitcoin-alpha",
            "--out",
            clean.to_str().unwrap(),
            "--seed",
            "5",
        ])
        .status()
        .unwrap();
    assert!(status.success());

    // Use the fast greedy method to keep the test quick.
    let out = binattack()
        .args([
            "attack",
            "--graph",
            clean.to_str().unwrap(),
            "--out",
            poisoned.to_str().unwrap(),
            "--budget",
            "10",
            "--auto-targets",
            "3",
            "--method",
            "gradmax",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("tau_as"));
    assert!(poisoned.exists());
    // The reported decrease must be positive.
    let tau_line = text.lines().find(|l| l.contains("tau_as")).unwrap();
    let pct: f64 = tau_line
        .split("tau_as = ")
        .nth(1)
        .unwrap()
        .trim_end_matches(['%', ')'])
        .parse()
        .unwrap();
    assert!(pct > 0.0, "reported tau_as {pct} not positive: {tau_line}");
}

#[test]
fn attack_with_explicit_targets_and_ops_mode() {
    let clean = tmp("explicit_in.edges");
    let poisoned = tmp("explicit_out.edges");
    binattack()
        .args([
            "generate",
            "--dataset",
            "er",
            "--out",
            clean.to_str().unwrap(),
            "--seed",
            "9",
        ])
        .status()
        .unwrap();
    let out = binattack()
        .args([
            "attack",
            "--graph",
            clean.to_str().unwrap(),
            "--out",
            poisoned.to_str().unwrap(),
            "--budget",
            "5",
            "--targets",
            "1,2,3",
            "--method",
            "random",
            "--ops",
            "add",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[1, 2, 3]"));
}

/// Fast CI smoke test: the full generate → score → attack round-trip on
/// a small Erdős–Rényi graph, cheap enough to run on every push. Uses
/// the greedy method and a small budget so the whole chain stays well
/// under a few seconds even on cold CI runners.
#[test]
fn smoke_er_generate_score_attack_roundtrip() {
    let clean = tmp("smoke_er.edges");
    let poisoned = tmp("smoke_er_poisoned.edges");

    let out = binattack()
        .args([
            "generate",
            "--dataset",
            "er",
            "--out",
            clean.to_str().unwrap(),
            "--seed",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = binattack()
        .args(["score", "--graph", clean.to_str().unwrap(), "--top", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = binattack()
        .args([
            "attack",
            "--graph",
            clean.to_str().unwrap(),
            "--out",
            poisoned.to_str().unwrap(),
            "--budget",
            "5",
            "--auto-targets",
            "2",
            "--method",
            "gradmax",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(poisoned.exists());

    // The poisoned graph must still be a readable edge list.
    let out = binattack()
        .args(["score", "--graph", poisoned.to_str().unwrap(), "--top", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// gen-stream → stream round-trip: shard counts never change the
/// stdout bytes, and a snapshot-resumed run continues the suffix
/// byte-identically (the contract the CI determinism job re-checks at
/// larger scale).
#[test]
fn stream_shard_invariance_and_snapshot_resume() {
    let graph = tmp("stream.edges");
    let events = tmp("stream.events");
    binattack()
        .args([
            "generate",
            "--dataset",
            "er",
            "--out",
            graph.to_str().unwrap(),
            "--seed",
            "5",
        ])
        .status()
        .unwrap();
    let out = binattack()
        .args([
            "gen-stream",
            "--graph",
            graph.to_str().unwrap(),
            "--out",
            events.to_str().unwrap(),
            "--events",
            "400",
            "--seed",
            "9",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let run = |shards: &str, extra: &[&str]| -> (bool, String) {
        let mut args = vec![
            "stream",
            "--graph",
            graph.to_str().unwrap(),
            "--events",
            events.to_str().unwrap(),
            "--batch",
            "100",
            "--top",
            "3",
            "--shards",
            shards,
        ];
        args.extend_from_slice(extra);
        let out = binattack().args(&args).output().unwrap();
        (
            out.status.success(),
            String::from_utf8_lossy(&out.stdout).to_string(),
        )
    };

    let (ok, reference) = run("1", &[]);
    assert!(ok);
    assert!(reference.contains("batch 4:"), "{reference}");
    assert!(reference.contains("stream done:"), "{reference}");
    for shards in ["4", "8"] {
        let (ok, text) = run(shards, &[]);
        assert!(ok);
        assert_eq!(text, reference, "stdout differs at --shards {shards}");
    }

    // First half with a snapshot, then resume over the full stream: the
    // resumed stdout must be the byte-identical tail of the reference.
    let half_events = tmp("stream_half.events");
    let full = std::fs::read_to_string(&events).unwrap();
    let half: String = full.lines().take(201).collect::<Vec<_>>().join("\n") + "\n";
    std::fs::write(&half_events, half).unwrap(); // header + 200 events
    let snapshot = tmp("stream.snapshot");
    let _ = std::fs::remove_file(&snapshot);
    let out = binattack()
        .args([
            "stream",
            "--graph",
            graph.to_str().unwrap(),
            "--events",
            half_events.to_str().unwrap(),
            "--batch",
            "100",
            "--top",
            "3",
            "--shards",
            "2",
            "--snapshot",
            snapshot.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(snapshot.exists());
    let (ok, resumed) = run("2", &["--snapshot", snapshot.to_str().unwrap(), "--resume"]);
    assert!(ok);
    let resumed_body = resumed
        .strip_suffix(&format!(
            "{}\n",
            resumed.lines().last().expect("summary line")
        ))
        .unwrap()
        .to_string();
    assert!(
        reference.contains(&resumed_body),
        "resumed stdout is not a byte-identical slice of the reference\n\
         --- resumed ---\n{resumed}\n--- reference ---\n{reference}"
    );
    assert!(resumed.starts_with("batch 3:"), "{resumed}");
}

#[test]
fn score_on_missing_file_fails_gracefully() {
    let out = binattack()
        .args(["score", "--graph", "/definitely/not/here.edges"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"));
}
