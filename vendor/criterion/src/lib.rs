//! Offline stand-in for the subset of the `criterion` bench API this
//! workspace uses: `criterion_group!` / `criterion_main!`, [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), [`BenchmarkId`] and [`Bencher::iter`].
//!
//! It is a real (if simple) harness: each benchmark is warmed up once,
//! timed for `sample_size` samples, and the per-iteration mean / min /
//! max are printed as a table row. There is no statistical analysis,
//! no HTML report and no saved baselines — swap the `vendor/criterion`
//! path dependency for the real crate to get those.
//!
//! The binaries understand the arguments cargo passes to `harness =
//! false` targets: `--bench` is ignored, `--test` switches to a
//! single-iteration smoke mode, and a bare string positional argument
//! filters benchmarks by substring.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each `criterion_group!` target function.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Criterion {
    /// Build a `Criterion` from the process arguments cargo passes to
    /// `harness = false` bench targets.
    pub fn from_args() -> Self {
        // Flags that take a separate value argument in real criterion;
        // anything else starting with "--" is treated as boolean so a
        // following positional filter is never swallowed.
        const VALUE_FLAGS: &[&str] = &[
            "--baseline",
            "--color",
            "--measurement-time",
            "--output-format",
            "--profile-time",
            "--sample-size",
            "--save-baseline",
            "--warm-up-time",
        ];
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                s if s.starts_with("--") => {
                    if VALUE_FLAGS.contains(&s) {
                        let _ = args.next();
                    }
                }
                positional => c.filter = Some(positional.to_string()),
            }
        }
        c
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 30,
            measurement_time: Duration::from_millis(300),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Empty group name: standalone benchmarks report a bare id, like
        // real criterion, rather than "name/name".
        let mut group = self.benchmark_group("");
        group.run(&id.id, f);
        group.finish();
        self
    }
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_budget: if self.criterion.test_mode {
                1
            } else {
                self.sample_size
            },
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        bencher.report(&full);
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing driver passed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_budget: usize,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, and a floor on iterations per sample so that
        // sub-microsecond routines are not dominated by timer overhead.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed();
        let target = self.measurement_time.max(Duration::from_millis(1)) / 10;
        self.iters_per_sample = if once.is_zero() {
            1000
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
        };

        let deadline = Instant::now() + self.measurement_time;
        self.samples.clear();
        for _ in 0..self.sample_budget {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
            if Instant::now() > deadline {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        println!(
            "{name:<44} time: [{} {} {}]  ({} samples x {} iters)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a function that runs each listed benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `fn main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("wanted".into()),
            test_mode: true,
        };
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("other", |_b| ran = true);
        group.bench_function("wanted", |_b| ran = true);
        group.finish();
        assert!(ran, "matching benchmark must run");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(4).id, "4");
        assert_eq!(BenchmarkId::new("f", 4).id, "f/4");
    }
}
