//! Sequence helpers: the [`SliceRandom`] extension trait.

use crate::{Rng, RngCore};

/// Shuffling and random selection on slices.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Partial Fisher–Yates: after the call the first `amount` positions
    /// hold a uniform random sample of the slice (in uniform random
    /// order). Returns the sampled prefix and the remainder.
    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [Self::Item], &mut [Self::Item]);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        amount: usize,
    ) -> (&mut [T], &mut [T]) {
        let amount = amount.min(self.len());
        for i in 0..amount {
            let j = rng.gen_range(i..self.len());
            self.swap(i, j);
        }
        self.split_at_mut(amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let v: Vec<u8> = vec![];
        assert!(v.choose(&mut rng).is_none());
        assert_eq!([9u8].choose(&mut rng), Some(&9));
    }
}
