//! Concrete generators. [`StdRng`] is xoshiro256++ seeded via SplitMix64.

use crate::{RngCore, SeedableRng};

/// Deterministic pseudo-random generator (xoshiro256++).
///
/// Unlike upstream `rand`, the output stream is stable across versions of
/// this stub — seeds embedded in tests and experiment scripts stay valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&j));
            let x = rng.gen_range(-2.5..1.5);
            assert!((-2.5..1.5).contains(&x));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
