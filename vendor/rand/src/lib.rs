//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this crate instead of the real one. The generator is
//! xoshiro256++ seeded through SplitMix64 — deterministic per seed,
//! which is all the callers rely on; the exact stream intentionally
//! does not match upstream `StdRng`.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// A source of random `u64`s. Object-safe core of the API.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seeding interface. Only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types [`Rng::gen_range`] can draw uniformly. Mirrors upstream's
/// `SampleUniform` so that type inference flows from the range's element
/// type to `gen_range`'s return type exactly as with the real crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let width = hi.wrapping_sub(lo) as $u as u64;
                let span = width + inclusive as u64;
                if span == 0 {
                    // Full-width inclusive range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    usize => usize, u64 => u64, u32 => u32, u16 => u16, u8 => u8,
    isize => usize, i64 => u64, i32 => u32, i16 => u16, i8 => u8
);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _: bool) -> Self {
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _: bool) -> Self {
        lo + rng.next_f64() as f32 * (hi - lo)
    }
}

/// A range understood by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// Convenience extension trait, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} outside [0,1]");
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
