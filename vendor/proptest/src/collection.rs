//! Collection strategies: [`vec()`].

use crate::strategy::Strategy;
use crate::TestRng;

/// Number of elements a collection strategy may produce: either an exact
/// count (`usize`) or a half-open range (`Range<usize>`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// `Vec<T>` strategy: length drawn from `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.hi - self.size.lo;
        let len = if span <= 1 {
            self.size.lo
        } else {
            self.size.lo + rng.gen_usize_below(span)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::deterministic("collection-tests");
        for _ in 0..200 {
            let v = vec(0u32..5, 7usize).sample(&mut rng);
            assert_eq!(v.len(), 7);
            let w = vec(0u32..5, 2usize..6).sample(&mut rng);
            assert!((2..6).contains(&w.len()));
        }
    }
}
