//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the `proptest!` macro (including `#![proptest_config(..)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! and [`collection::vec`].
//!
//! It is a real property-test runner — each test samples fresh inputs
//! from its strategies for `ProptestConfig::cases` cases and fails with
//! the case number and seed on the first violated assertion — but there
//! is no shrinking and no persisted failure files. Sampling is
//! deterministic: the RNG is seeded from the test name, so a failure
//! reproduces by re-running the same test binary.
//!
//! Case count defaults to 64 and can be overridden with the
//! `PROPTEST_CASES` environment variable, matching upstream's knob.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Per-test runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case does not count.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// The deterministic RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from the test's name so every test draws an independent,
    /// reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }

    pub fn gen_u64(&mut self) -> u64 {
        self.0.gen()
    }

    pub fn gen_f64(&mut self) -> f64 {
        self.0.gen()
    }

    pub fn gen_usize_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_usize_below: empty bound");
        self.0.gen_range(0..bound)
    }
}

/// Drives one property test: samples cases, counts rejects, panics on
/// the first failure. Called from the expansion of [`proptest!`].
pub fn run_property_test<F>(name: &str, config: &ProptestConfig, mut one_case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::deterministic(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(16).max(256);
    while passed < config.cases {
        match one_case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > max_rejects {
                    // Matches upstream: an assumption this strict means the
                    // property was never meaningfully exercised, which must
                    // fail loudly rather than pass vacuously.
                    panic!(
                        "proptest {name}: too many prop_assume rejects \
                         ({rejected}; {passed}/{} cases passed)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name}: case {} (after {rejected} rejects) failed:\n{msg}",
                    passed + 1
                );
            }
        }
    }
}

/// Property-test declaration macro. Mirrors upstream's surface grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(12))]
///     #[test]
///     fn my_prop(x in 0u32..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property_test(
                    stringify!($name),
                    &config,
                    |__rng: &mut $crate::TestRng| -> ::std::result::Result<(), $crate::TestCaseError> {
                        let ( $($pat,)+ ) =
                            ( $( $crate::Strategy::sample(&($strat), __rng), )+ );
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)+);
            }
        }
    };
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l
                );
            }
        }
    };
}

/// Rejects the current case (it is re-drawn, not counted) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
