//! The [`Strategy`] trait and the range / tuple / combinator strategies.

use crate::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream there is no value tree and no shrinking: a strategy
/// is just a deterministic sampler over the test RNG.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then sample from a strategy built from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.gen_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.gen_u64() % span) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                // Two-step cast: reinterpret the signed span as unsigned
                // first so spans larger than $t::MAX do not sign-extend.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.gen_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i64 => u64, i32 => u32, isize => usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.gen_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident.$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..500 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1usize..=4).sample(&mut rng);
            assert!((1..=4).contains(&w));
            let f = (-2.0..3.0f64).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = rng();
        let strat = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0u32..10, n).prop_map(move |v| (n, v)));
        for _ in 0..200 {
            let (n, v) = strat.sample(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn tuples_sample_elementwise() {
        let mut rng = rng();
        let (a, b, c) = (0u32..4, 10u64..20, -1.0..1.0f64).sample(&mut rng);
        assert!(a < 4);
        assert!((10..20).contains(&b));
        assert!((-1.0..1.0).contains(&c));
    }

    #[test]
    fn just_clones() {
        let mut rng = rng();
        assert_eq!(Just(7u8).sample(&mut rng), 7);
    }
}
