//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The workspace derives these traits on core data types so downstream
//! users *can* wire up real serialization, but nothing in-tree serializes
//! yet and the build environment cannot reach crates.io. These derives
//! accept the same attribute syntax and expand to nothing; swap the
//! `vendor/serde*` path dependencies for the real crates to activate them.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
