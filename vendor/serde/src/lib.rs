//! Offline stand-in for the subset of `serde` this workspace uses:
//! importing `Serialize` / `Deserialize` and deriving them on data types.
//!
//! The derives (re-exported from the sibling `serde_derive` stub) expand
//! to nothing, and the traits here are empty markers. Nothing in-tree
//! performs serialization yet; replacing the `vendor/serde*` path
//! dependencies with the real crates requires no source changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
